"""The lease authority: grants, write versions and invalidation fan-out.

One per domain (``domain.leases``, created lazily).  The authority is
the control plane of client-side caching:

* **Registration.**  An interface promoted to cached mode is registered
  here with a TTL; unregistered interfaces are invisible to every
  :class:`~repro.lease.cache.LeaseClient`, so default runs never touch
  this module.

* **Grants.**  A client that fills its cache acquires a per-interface
  lease: a plain expiry on the shared virtual clock.  Acquiring again
  (any cache miss against the same authority) *renews* the grant — and
  every successful contact also delivers the invalidations the holder
  missed, which is what makes the staleness bound work when the
  asynchronous fan-out below is lossy.

* **Invalidation fan-out.**  ``note_write`` is called at every write
  commit point (the group member layer's quorum commit, the bottom of
  the server dispatch stack for singletons and shards).  It bumps the
  per-(interface, tag) version, records a *pending* invalidation per
  live holder, and posts a one-way network message to each — posts are
  real :meth:`~repro.net.network.Network.post` traffic, so chaos drops
  them like anything else.  A lost post is repaired at the holder's
  next contact (the pending record); a holder that never contacts again
  self-fences when its grant expires.  Either way no cache serves a
  superseded value for longer than the TTL after the write committed.

The TEST-ONLY ``mutate_skip_invalidation`` flag disables *both* the
fan-out and the pending bookkeeping, so a continuously-renewing client
keeps serving a superseded value past the bound — exactly the breakage
the ``staleness_bound`` oracle in :mod:`repro.check` must catch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import BindingError, NodeUnreachableError

#: Virtual-ms charged per authority contact (grant, renewal, drain) —
#: the same control-plane discipline as the group registry.
CONTROL_COST_MS = 0.2

#: Network message kind of the one-way invalidation fan-out.
INVAL_KIND = "lease-inval"

#: Wildcard tag: "drop every entry of this interface" (revocation,
#: demotion, shard drain).  A flush with interface ``*`` drops all.
FLUSH_TAG = "*"


class LeaseAuthority:
    """Per-domain lease registry, version ledger and invalidator."""

    #: TEST-ONLY mutation hook (see repro.check): skip the invalidation
    #: fan-out *and* the pending bookkeeping on write, so stale cache
    #: entries survive renewals — the staleness_bound oracle must fire.
    mutate_skip_invalidation = False

    def __init__(self, domain, default_ttl_ms: float = 2000.0) -> None:
        self.domain = domain
        self.default_ttl_ms = default_ttl_ms
        self._home: Optional[str] = None
        #: interface_id -> lease TTL in virtual ms.
        self.registered: Dict[str, float] = {}
        #: (interface_id, tag) -> committed write version.
        self.versions: Dict[Tuple[str, str], int] = {}
        #: interface_id -> holder node -> grant expiry (virtual ms).
        self.grants: Dict[str, Dict[str, float]] = {}
        #: holder node -> invalidations not yet known delivered; drained
        #: (re-delivered) at the holder's next successful contact.
        self.pending: Dict[str, Set[Tuple[str, str]]] = {}
        #: holder node -> attached LeaseClient (one per node).
        self.clients: Dict[str, "LeaseClient"] = {}
        self.grants_issued = 0
        self.renewals = 0
        self.contacts = 0
        self.contact_failures = 0
        self.invalidations_noted = 0
        self.invalidations_posted = 0
        self.invalidations_skipped = 0
        self.pending_delivered = 0
        self.revocations = 0
        self.drains = 0

    # -- plumbing ------------------------------------------------------------

    @property
    def clock(self):
        return self.domain.scheduler.clock

    def home_node(self) -> str:
        """The node the authority answers from (the domain gateway)."""
        if self._home is None:
            self._home = self.domain.gateway()[0]
        return self._home

    # -- registration (promotion/demotion) -----------------------------------

    def register(self, interface_id: str,
                 ttl_ms: Optional[float] = None) -> None:
        """Promote *interface_id* to cached mode."""
        self.registered[interface_id] = (ttl_ms if ttl_ms is not None
                                         else self.default_ttl_ms)

    def unregister(self, interface_id: str) -> None:
        """Demote: revoke every grant and tell the holders to flush."""
        self.registered.pop(interface_id, None)
        self._flush_interface(interface_id)

    def covers(self, interface_id: str) -> bool:
        return interface_id in self.registered

    def version(self, interface_id: str, tag: str) -> int:
        return self.versions.get((interface_id, tag), 0)

    def attach_client(self, nucleus) -> "LeaseClient":
        """The (single) caching client of *nucleus*'s node."""
        from repro.lease.cache import LeaseClient

        holder = nucleus.node_address
        client = self.clients.get(holder)
        if client is None:
            client = LeaseClient(self, nucleus)
            self.clients[holder] = client
            nucleus.lease_client = client
        return client

    # -- the control plane ---------------------------------------------------

    def contact(self, holder: str) -> List[Tuple[str, str]]:
        """One holder<->authority round trip; delivers missed
        invalidations.  Raises when the holder cannot reach the
        authority's home node — a partitioned holder cannot renew, so
        its grant runs out and it fences itself."""
        home = self.home_node()
        faults = self.domain.network.faults
        self.clock.advance(CONTROL_COST_MS)
        self.contacts += 1
        if (faults.is_crashed(home) or faults.is_crashed(holder)
                or faults.link_blocked(holder, home)
                or faults.link_blocked(home, holder)):
            self.contact_failures += 1
            raise NodeUnreachableError(
                f"lease authority on {home} unreachable from {holder}")
        delivered = sorted(self.pending.pop(holder, ()))
        self.pending_delivered += len(delivered)
        return delivered

    def acquire(self, holder: str, interface_id: str
                ) -> Tuple[float, List[Tuple[str, str]]]:
        """Grant (or renew) *holder*'s lease on *interface_id*.

        Returns ``(expiry, delivered)`` where *delivered* is every
        pending invalidation repaired by this contact — the caller must
        apply them, and must not fill an entry whose tag is among them
        (its just-fetched value may predate those writes).
        """
        if interface_id not in self.registered:
            raise BindingError(
                f"interface {interface_id!r} is not in cached mode")
        delivered = self.contact(holder)
        now = self.clock.now
        held = self.grants.setdefault(interface_id, {})
        if held.get(holder, 0.0) > now:
            self.renewals += 1
        else:
            self.grants_issued += 1
        expiry = now + self.registered[interface_id]
        held[holder] = expiry
        return expiry, delivered

    # -- the write path ------------------------------------------------------

    def note_write(self, interface_id: str, tag: str,
                   source: Optional[str] = None) -> None:
        """A write to (*interface_id*, *tag*) committed: bump the
        version and fan invalidations out to every live holder."""
        if interface_id not in self.registered:
            return
        key = (interface_id, tag)
        self.versions[key] = self.versions.get(key, 0) + 1
        if type(self).mutate_skip_invalidation:
            self.invalidations_skipped += 1
            return
        self.invalidations_noted += 1
        now = self.clock.now
        held = self.grants.get(interface_id)
        if not held:
            return
        origin = source or self.home_node()
        for holder in sorted(held):
            if held[holder] <= now:
                continue  # grant lapsed: the holder fenced itself
            self.pending.setdefault(holder, set()).add(key)
            self._post(origin, holder, interface_id, tag)

    def _post(self, origin: str, holder: str, interface_id: str,
              tag: str) -> None:
        self.domain.network.post(
            origin, holder, f"{interface_id}|{tag}".encode("utf-8"),
            kind=INVAL_KIND,
            headers={"iid": interface_id, "tag": tag})
        self.invalidations_posted += 1

    # -- revocation ----------------------------------------------------------

    def holders(self) -> List[str]:
        """Every node currently holding at least one unexpired grant."""
        now = self.clock.now
        alive = {holder
                 for held in self.grants.values()
                 for holder, expiry in held.items() if expiry > now}
        return sorted(alive)

    def revoke_holder(self, holder: str) -> int:
        """Drop every grant of a holder declared dead.

        The holder cannot be told (it is unreachable by assumption); it
        fences itself when its grants expire on its own clock.  The
        flush-all pending marker makes its *first contact after coming
        back* drop everything and refetch, so a revived node never
        resumes serving from a pre-crash cache.
        """
        revoked = 0
        for interface_id in sorted(self.grants):
            if self.grants[interface_id].pop(holder, None) is not None:
                revoked += 1
        if revoked:
            self.revocations += revoked
            self.pending.setdefault(holder, set()).add(
                (FLUSH_TAG, FLUSH_TAG))
        return revoked

    def drain_interface(self, interface_id: str) -> float:
        """Revoke every grant on one interface (shard cutover).

        Posts a flush to each holder and returns the longest remaining
        grant validity in virtual ms: the caller must wait that grace
        window out before completing the cutover, so a holder whose
        flush was lost has self-fenced by the time ownership moves.
        """
        now = self.clock.now
        held = self.grants.pop(interface_id, {})
        origin = self.home_node()
        remaining = 0.0
        for holder in sorted(held):
            expiry = held[holder]
            if expiry <= now:
                continue
            remaining = max(remaining, expiry - now)
            self.revocations += 1
            self.pending.setdefault(holder, set()).add(
                (interface_id, FLUSH_TAG))
            self._post(origin, holder, interface_id, FLUSH_TAG)
        self.drains += 1
        return remaining

    def _flush_interface(self, interface_id: str) -> None:
        held = self.grants.pop(interface_id, {})
        origin = self.home_node()
        now = self.clock.now
        for holder in sorted(held):
            if held[holder] <= now:
                continue
            self.revocations += 1
            self.pending.setdefault(holder, set()).add(
                (interface_id, FLUSH_TAG))
            self._post(origin, holder, interface_id, FLUSH_TAG)

    # -- placement visibility ------------------------------------------------

    def node_lease_load(self, capsule) -> int:
        """Unexpired grants outstanding against *capsule*'s interfaces.

        Placement (``repro.mgmt.placement_candidates``) counts this as
        load: a node whose interfaces serve many cached readers is a
        worse home for yet another object than its invocation counters
        alone suggest — every write it hosts fans out to those holders.
        """
        now = self.clock.now
        total = 0
        for interface_id in capsule.interfaces:
            held = self.grants.get(interface_id)
            if held:
                total += sum(1 for expiry in held.values()
                             if expiry > now)
        return total

    # -- reporting -----------------------------------------------------------

    def report(self) -> Dict:
        now = self.clock.now
        live = {iid: sum(1 for expiry in held.values() if expiry > now)
                for iid, held in sorted(self.grants.items())}
        return {
            "registered": sorted(self.registered),
            "live_grants": {iid: count for iid, count in live.items()
                            if count},
            "grants_issued": self.grants_issued,
            "renewals": self.renewals,
            "contacts": self.contacts,
            "contact_failures": self.contact_failures,
            "invalidations_noted": self.invalidations_noted,
            "invalidations_posted": self.invalidations_posted,
            "invalidations_skipped": self.invalidations_skipped,
            "pending_delivered": self.pending_delivered,
            "revocations": self.revocations,
            "drains": self.drains,
        }
