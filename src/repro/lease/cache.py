"""The client side of lease-based caching.

One :class:`LeaseClient` per node (shared by every channel the node's
capsules open).  The engine consults it on the read path — before path
selection, before the network — and serves registered read-only
interrogations straight from memory while the node's lease grant is
valid.  Entries are keyed by ``(interface_id, operation, args)``;
invalidations address them by *tag* (the operation's first argument,
the same routing-key convention the shard router uses).

Validity is purely local: an entry is served only while the holder's
grant on its interface is unexpired on the shared virtual clock.  No
message is needed to *deny* a read — a partitioned client simply fails
to renew and starts missing, which is the fencing property the
``staleness_bound`` oracle and the C24 benchmark rely on.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.comp.outcomes import Termination
from repro.errors import CommunicationError
from repro.lease.authority import FLUSH_TAG, INVAL_KIND, LeaseAuthority


def tag_of(args: Tuple) -> str:
    """The invalidation tag of an invocation: its routing key."""
    return str(args[0]) if args else ""


class LeaseClient:
    """Per-node cache of lease-covered read results."""

    def __init__(self, authority: LeaseAuthority, nucleus) -> None:
        self.authority = authority
        self.nucleus = nucleus
        self.holder = nucleus.node_address
        self.clock = authority.domain.scheduler.clock
        #: (interface_id, operation, args) -> cached Termination.
        self.entries: Dict[Tuple[str, str, Tuple], Termination] = {}
        #: interface_id -> grant expiry (virtual ms); entries under an
        #: expired grant are unusable even though they are still held.
        self.grant_expiry: Dict[str, float] = {}
        self.enabled = True
        #: Virtual cost of serving a hit (a local lookup, not a network
        #: exchange) — nonzero so cached reads stay on the clock and
        #: derived throughput comparisons have a denominator.
        self.serve_cost_ms = 0.001
        #: Structured read evidence for the staleness_bound oracle
        #: (opt-in, the check harness enables it).
        self.record_reads = False
        self.read_log: List[Dict[str, Any]] = []
        self.hits = 0
        self.misses = 0
        self.fills = 0
        self.skipped_fills = 0
        self.expired = 0
        self.invalidations = 0
        self.flushes = 0
        self.acquire_failures = 0
        self.renewals_skipped = 0
        nucleus.node.on_deliver(INVAL_KIND, self._on_invalidation)

    # -- the read path -------------------------------------------------------

    def _covered(self, ref, operation: str) -> bool:
        if not self.enabled or not self.authority.covers(ref.interface_id):
            return False
        spec = ref.signature.operations.get(operation)
        return spec is not None and spec.readonly

    def lookup(self, ref, operation: str,
               args: Tuple) -> Optional[Termination]:
        """Serve from cache, or ``None`` to send the read for real."""
        if not self._covered(ref, operation):
            return None
        interface_id = ref.interface_id
        key = (interface_id, operation, tuple(args))
        entry = self.entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        expiry = self.grant_expiry.get(interface_id, 0.0)
        if self.clock.now >= expiry:
            # The grant ran out (no renewal landed — partitioned, or
            # just idle): self-fence instead of serving possibly-stale
            # state beyond the bound.
            del self.entries[key]
            self.expired += 1
            self.misses += 1
            return None
        ttl = self.authority.registered.get(
            interface_id, self.authority.default_ttl_ms)
        if expiry - self.clock.now <= ttl * 0.5 and \
                not self.nucleus.retry_budgets.can_spend(
                    self.authority.home_node(), "lease"):
            # Proactive renewal is *optional* work: when the path to
            # the authority is already in retry debt (budget dry) the
            # renewal is skipped rather than piled on — the unrenewed
            # grant still bounds staleness, and expiry fences us.
            self.renewals_skipped += 1
        elif expiry - self.clock.now <= ttl * 0.5:
            # Past the grant's half-life: renew proactively, so a busy
            # reader keeps an unbroken lease instead of lapsing and
            # refetching.  Every renewal contact also delivers the
            # invalidations whose posts were lost — the repair channel
            # that keeps lossy fan-out inside the staleness bound.
            try:
                new_expiry, delivered = self.authority.acquire(
                    self.holder, interface_id)
            except CommunicationError:
                # Authority unreachable: keep serving — the unrenewed
                # grant still bounds staleness, and expiry fences us.
                self.acquire_failures += 1
            else:
                self.grant_expiry[interface_id] = new_expiry
                self._apply(delivered)
                entry = self.entries.get(key)
                if entry is None:
                    # The renewal just invalidated this very entry.
                    self.misses += 1
                    return None
        self.hits += 1
        self._record(interface_id, operation, args, entry, "cache")
        if self.serve_cost_ms:
            self.clock.advance(self.serve_cost_ms)
        return entry

    def store(self, ref, operation: str, args: Tuple,
              termination: Termination) -> None:
        """A real read completed: fill the cache under a fresh grant."""
        if not self._covered(ref, operation):
            return
        interface_id = ref.interface_id
        self._record(interface_id, operation, args, termination, "fetch")
        if not termination.ok:
            return  # signals are outcomes, not cacheable state
        try:
            expiry, delivered = self.authority.acquire(
                self.holder, interface_id)
        except CommunicationError:
            # Cannot reach the authority: the value is still good for
            # the caller, but without a grant it must not be cached.
            self.acquire_failures += 1
            return
        if self.clock.now >= self.grant_expiry.get(interface_id, 0.0):
            # The previous grant lapsed before this contact (or never
            # existed): the authority stopped recording invalidations
            # for us the moment it expired, so everything cached under
            # it may silently miss writes from the gap.  This acquire
            # is a *fresh* lease, not a renewal — drop the old entries.
            for key in [k for k in self.entries
                        if k[0] == interface_id]:
                del self.entries[key]
                self.expired += 1
        self.grant_expiry[interface_id] = expiry
        tag = tag_of(args)
        stale = any(
            pair == (FLUSH_TAG, FLUSH_TAG)
            or (pair[0] == interface_id and pair[1] in (tag, FLUSH_TAG))
            for pair in delivered)
        self._apply(delivered)
        if stale:
            # A write to this very tag committed between our fetch and
            # this contact: the fetched value may already be superseded.
            self.skipped_fills += 1
            return
        self.entries[(interface_id, operation, tuple(args))] = termination
        self.fills += 1

    # -- invalidation --------------------------------------------------------

    def _on_invalidation(self, message) -> None:
        self.apply_invalidation(message.headers.get("iid", FLUSH_TAG),
                                message.headers.get("tag", FLUSH_TAG))

    def _apply(self, delivered) -> None:
        for interface_id, tag in delivered:
            self.apply_invalidation(interface_id, tag)

    def apply_invalidation(self, interface_id: str, tag: str) -> None:
        self.invalidations += 1
        if interface_id == FLUSH_TAG:
            self.entries.clear()
            self.grant_expiry.clear()
            self.flushes += 1
            return
        if tag == FLUSH_TAG:
            for key in [k for k in self.entries
                        if k[0] == interface_id]:
                del self.entries[key]
            # A whole-interface flush is a revocation: drop the grant
            # too, so nothing can be served until a fresh acquire.
            self.grant_expiry.pop(interface_id, None)
            self.flushes += 1
            return
        for key in [k for k in self.entries
                    if k[0] == interface_id and tag_of(k[2]) == tag]:
            del self.entries[key]

    # -- evidence & reporting ------------------------------------------------

    def _record(self, interface_id: str, operation: str, args: Tuple,
                termination: Termination, via: str) -> None:
        if not self.record_reads:
            return
        self.read_log.append({
            "t": round(self.clock.now, 6),
            "iid": interface_id,
            "op": operation,
            "tag": tag_of(args),
            "values": list(termination.values),
            "via": via,
        })

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "fills": self.fills,
            "skipped_fills": self.skipped_fills,
            "expired": self.expired,
            "invalidations": self.invalidations,
            "flushes": self.flushes,
            "acquire_failures": self.acquire_failures,
            "renewals_skipped": self.renewals_skipped,
            "entries": len(self.entries),
        }
