"""Promotion policy: trace-driven selection of cacheable interfaces.

Caching is an optimisation with a cost (grants, fan-out on every
write), so which interfaces run in cached mode is a *policy* decision,
and like every other adaptive decision in this repro it is driven by
observed traffic, not configuration guesswork.  The policy scans the
domain tracer's ``invoke`` spans — the client-side record of every
invocation, already carrying the interface id and operation name —
classifies each operation as read or write from the interface
signature, and promotes interfaces whose observed mix is read-heavy
enough to pay for itself.  Interfaces that drift write-heavy are
demoted (which revokes and flushes every outstanding grant via the
authority).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.types.signature import InterfaceSignature


class PromotionPolicy:
    """Promote/demote interfaces to cached mode by observed skew."""

    def __init__(self, domain, min_invocations: int = 20,
                 promote_ratio: float = 0.85,
                 demote_ratio: float = 0.5) -> None:
        self.domain = domain
        #: Fewer observations than this and the mix is noise: no action.
        self.min_invocations = min_invocations
        #: Promote at or above this read fraction ...
        self.promote_ratio = promote_ratio
        #: ... demote a covered interface that falls below this one.
        #: The gap between the two is hysteresis.
        self.demote_ratio = demote_ratio
        self.promotions = 0
        self.demotions = 0

    # -- observation ---------------------------------------------------------

    def _candidate_signatures(self) -> Dict[str, InterfaceSignature]:
        """Every interface id the policy can reason about, with its
        signature (needed to classify operations)."""
        signatures: Dict[str, InterfaceSignature] = {}
        for address in sorted(self.domain.nuclei):
            nucleus = self.domain.nuclei[address]
            for name in sorted(nucleus.capsules):
                capsule = nucleus.capsules[name]
                for interface in capsule.interfaces.values():
                    signatures[interface.interface_id] = interface.signature
        if self.domain._groups is not None:
            registry = self.domain._groups
            for group_id in registry.group_ids():
                # The group ref's interface id is the group id itself.
                signatures[group_id] = registry.group(group_id).signature
        return signatures

    def observed_mix(self) -> Dict[str, Tuple[int, int]]:
        """interface_id -> (reads, writes) seen by the tracer."""
        signatures = self._candidate_signatures()
        mix: Dict[str, Tuple[int, int]] = {}
        for span in self.domain.tracer.spans():
            if span.layer != "invoke":
                continue
            interface_id = span.tags.get("interface")
            signature = signatures.get(interface_id)
            if signature is None or ":" not in span.name:
                continue
            operation = span.name.split(":", 1)[1]
            spec = signature.operations.get(operation)
            if spec is None:
                continue
            reads, writes = mix.get(interface_id, (0, 0))
            if spec.readonly:
                reads += 1
            else:
                writes += 1
            mix[interface_id] = (reads, writes)
        return mix

    # -- decisions -----------------------------------------------------------

    def evaluate(self) -> List[Tuple[str, str, float]]:
        """Apply the policy once; returns (action, interface_id, ratio)
        tuples for every promotion/demotion taken."""
        authority = self.domain.leases
        actions: List[Tuple[str, str, float]] = []
        for interface_id, (reads, writes) in sorted(
                self.observed_mix().items()):
            total = reads + writes
            if total < self.min_invocations:
                continue
            ratio = reads / total
            covered = authority.covers(interface_id)
            if not covered and ratio >= self.promote_ratio:
                authority.register(interface_id)
                self.promotions += 1
                actions.append(("promote", interface_id, round(ratio, 4)))
            elif covered and ratio < self.demote_ratio:
                authority.unregister(interface_id)
                self.demotions += 1
                actions.append(("demote", interface_id, round(ratio, 4)))
        return actions

    def report(self) -> Dict:
        return {
            "promotions": self.promotions,
            "demotions": self.demotions,
            "min_invocations": self.min_invocations,
            "promote_ratio": self.promote_ratio,
            "demote_ratio": self.demote_ratio,
        }
