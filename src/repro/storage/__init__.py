"""Stable storage and resource transparency (paper section 5.5).

"Objects that are not actively in use may be transferred from the
execution environment to storage ... This passive location can be advised
to the relocation mechanisms and subsequent reactivation made transparent
to clients of the object."
"""

from repro.storage.repository import StableRepository, StoredObject
from repro.storage.passivation import PassivationManager

__all__ = ["StableRepository", "StoredObject", "PassivationManager"]
