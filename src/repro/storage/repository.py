"""The stable object repository.

A domain-level store that survives node crashes (stable storage is assumed
more resilient than any single node, as the paper's durability discussion
requires).  It holds passivated objects, checkpoints and interaction logs.
Read/write costs are charged to the virtual clock so resource and failure
transparency have measurable price tags.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.errors import StorageError


@dataclass
class StoredObject:
    """One stored snapshot of an object's state."""

    key: str
    cls: type
    snapshot: Dict[str, Any]
    signature: Any = None
    constraints: Any = None
    epoch: int = 0
    stored_at: float = 0.0
    kind: str = "passive"  # "passive" | "checkpoint"


class StableRepository:
    """Keyed snapshot + log storage for one domain."""

    def __init__(self, domain_name: str, clock=None,
                 write_ms: float = 0.5, read_ms: float = 0.2) -> None:
        self.domain_name = domain_name
        self.clock = clock
        self.write_ms = write_ms
        self.read_ms = read_ms
        self._objects: Dict[str, StoredObject] = {}
        self._logs: Dict[str, List[Any]] = {}
        self.writes = 0
        self.reads = 0

    def _charge(self, cost: float) -> None:
        if self.clock is not None:
            self.clock.advance(cost)

    # -- snapshots -------------------------------------------------------------

    def store(self, record: StoredObject) -> None:
        self.writes += 1
        self._charge(self.write_ms)
        stored = StoredObject(
            key=record.key, cls=record.cls,
            snapshot=copy.deepcopy(record.snapshot),
            signature=record.signature, constraints=record.constraints,
            epoch=record.epoch,
            stored_at=(self.clock.now if self.clock else 0.0),
            kind=record.kind)
        self._objects[record.key] = stored

    def fetch(self, key: str) -> StoredObject:
        self.reads += 1
        self._charge(self.read_ms)
        record = self._objects.get(key)
        if record is None:
            raise StorageError(
                f"repository({self.domain_name}) has no object {key!r}")
        return StoredObject(
            key=record.key, cls=record.cls,
            snapshot=copy.deepcopy(record.snapshot),
            signature=record.signature, constraints=record.constraints,
            epoch=record.epoch, stored_at=record.stored_at,
            kind=record.kind)

    def contains(self, key: str) -> bool:
        return key in self._objects

    def delete(self, key: str) -> None:
        self._objects.pop(key, None)
        self._logs.pop(key, None)

    def keys(self, kind: Optional[str] = None) -> List[str]:
        if kind is None:
            return sorted(self._objects)
        return sorted(k for k, v in self._objects.items() if v.kind == kind)

    # -- interaction logs (failure transparency) ---------------------------------

    def append_log(self, key: str, entry: Any) -> None:
        self.writes += 1
        self._charge(self.write_ms)
        self._logs.setdefault(key, []).append(copy.deepcopy(entry))

    def read_log(self, key: str) -> List[Any]:
        self.reads += 1
        self._charge(self.read_ms)
        return copy.deepcopy(self._logs.get(key, []))

    def truncate_log(self, key: str) -> None:
        self.writes += 1
        self._charge(self.write_ms)
        self._logs[key] = []

    def log_length(self, key: str) -> int:
        return len(self._logs.get(key, []))
