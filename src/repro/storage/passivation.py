"""Passivation: resource transparency.

"Resource management may cause an object to be passivated when it is not
in use - for example by removing it from main memory and putting it on
disc" (section 5.4).  A passivated interface stays registered; the first
invocation to arrive reactivates it transparently (the reactivator hook is
installed on the interface), the epoch is bumped, and the relocation
service is advised of the change.
"""

from __future__ import annotations

from typing import List, Optional

from repro.comp.interface import Interface, InterfaceState
from repro.errors import StorageError
from repro.storage.repository import StableRepository, StoredObject
from repro.tx.versions import restore_snapshot, take_snapshot


class PassivationManager:
    """Moves idle objects between capsules and the stable repository."""

    def __init__(self, domain) -> None:
        self.domain = domain
        self.passivations = 0
        self.reactivations = 0
        self.sweep_event = None

    @property
    def repository(self) -> StableRepository:
        return self.domain.repository

    # -- explicit passivation -----------------------------------------------------

    def passivate(self, capsule, interface_id: str) -> None:
        interface = capsule.interfaces.get(interface_id)
        if interface is None:
            raise StorageError(
                f"no interface {interface_id} in capsule {capsule.name}")
        if interface.state != InterfaceState.ACTIVE:
            return
        implementation = interface.implementation
        self.repository.store(StoredObject(
            key=f"passive:{interface_id}",
            cls=type(implementation),
            snapshot=take_snapshot(implementation),
            signature=interface.signature,
            constraints=interface.annotations.get("constraints"),
            epoch=interface.epoch,
            kind="passive"))
        interface.passivate()
        interface.annotations["reactivator"] = self._make_reactivator(
            capsule)
        self.passivations += 1

    def _make_reactivator(self, capsule):
        def reactivate(interface: Interface) -> None:
            record = self.repository.fetch(
                f"passive:{interface.interface_id}")
            implementation = object.__new__(record.cls)
            restore_snapshot(implementation, record.snapshot)
            interface.reactivate(implementation)
            self.repository.delete(f"passive:{interface.interface_id}")
            self.reactivations += 1
            # Advise relocation of the (same-place, new-epoch) reference.
            self.domain.relocator.update(capsule.make_ref(interface))
        return reactivate

    # -- idle sweeping -------------------------------------------------------------

    def sweep(self, capsules: List, idle_ms: float) -> int:
        """Passivate every interface idle for longer than *idle_ms*."""
        now = self.domain.scheduler.now
        passivated = 0
        for capsule in capsules:
            for interface in list(capsule.interfaces.values()):
                if interface.state != InterfaceState.ACTIVE:
                    continue
                if not interface.annotations.get("constraints") or \
                        not interface.annotations["constraints"].resource:
                    continue
                last = interface.annotations.get("last_used", 0.0)
                if now - last >= idle_ms:
                    self.passivate(capsule, interface.interface_id)
                    passivated += 1
        return passivated

    def start_sweeping(self, capsules: List, idle_ms: float,
                       interval_ms: Optional[float] = None) -> None:
        interval = interval_ms if interval_ms is not None else idle_ms
        self.sweep_event = self.domain.scheduler.every(
            interval, lambda: self.sweep(capsules, idle_ms),
            label="passivation-sweep")

    def stop_sweeping(self) -> None:
        if self.sweep_event is not None:
            self.sweep_event.cancel()
            self.sweep_event = None
