"""Seeded randomness for the simulator.

A thin wrapper over :class:`random.Random` so that every stochastic choice
(latency jitter, message drops, failure injection) draws from one explicit,
seedable stream.  Sub-streams can be forked for independent components so
that adding randomness to one component does not perturb another.
"""

from __future__ import annotations

import random


class DeterministicRandom:
    """An explicit, forkable source of pseudo-randomness."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def fork(self, label: str) -> "DeterministicRandom":
        """Derive an independent stream keyed by *label*.

        Uses a stable digest, not ``hash()`` — Python salts string
        hashes per process, which would make "deterministic" runs differ
        between invocations of the interpreter.
        """
        import hashlib

        digest = hashlib.sha256(
            f"{self.seed}:{label}".encode("utf-8")).digest()
        derived = int.from_bytes(digest[:4], "big") & 0x7FFFFFFF
        return DeterministicRandom(derived)

    def uniform(self, lo: float, hi: float) -> float:
        return self._rng.uniform(lo, hi)

    def random(self) -> float:
        return self._rng.random()

    def randint(self, lo: int, hi: int) -> int:
        return self._rng.randint(lo, hi)

    def choice(self, seq):
        return self._rng.choice(seq)

    def shuffle(self, seq) -> None:
        self._rng.shuffle(seq)

    def sample(self, seq, k: int):
        return self._rng.sample(seq, k)

    def expovariate(self, rate: float) -> float:
        return self._rng.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)

    def chance(self, probability: float) -> bool:
        """True with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._rng.random() < probability
