"""Seeded randomness for the simulator.

A thin wrapper over :class:`random.Random` so that every stochastic choice
(latency jitter, message drops, failure injection) draws from one explicit,
seedable stream.  Sub-streams can be forked for independent components so
that adding randomness to one component does not perturb another.

Two rules keep whole-system runs reproducible from a single top-level
seed:

* **no hidden state** — derivation depends only on the parent's seed and
  the fork label, never on how many draws the parent has made, on
  ``hash()`` (salted per process), or on any module-level global;
* **label discipline** — every independent consumer forks its own
  labelled stream instead of drawing from a shared one.  The ``path``
  attribute records the fork lineage (``"7/network/latency-jitter"``)
  so correlated streams can be spotted in a debugger.
"""

from __future__ import annotations

import hashlib
import random


class DeterministicRandom:
    """An explicit, forkable source of pseudo-randomness."""

    def __init__(self, seed: int = 0, path: str = "") -> None:
        self.seed = seed
        #: Fork lineage, for debugging correlated streams.
        self.path = path if path else str(seed)
        self._rng = random.Random(seed)

    def derive(self, label: str) -> int:
        """The seed a fork labelled *label* would receive.

        Uses a stable digest, not ``hash()`` — Python salts string
        hashes per process, which would make "deterministic" runs differ
        between invocations of the interpreter.  Depends only on
        ``self.seed`` and *label*: deriving is free of draw-order
        effects, so a component can fork late without perturbing
        streams forked earlier.
        """
        digest = hashlib.sha256(
            f"{self.seed}:{label}".encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF

    def fork(self, label: str) -> "DeterministicRandom":
        """Derive an independent stream keyed by *label*."""
        return DeterministicRandom(self.derive(label),
                                   path=f"{self.path}/{label}")

    def uniform(self, lo: float, hi: float) -> float:
        return self._rng.uniform(lo, hi)

    def random(self) -> float:
        return self._rng.random()

    def randint(self, lo: int, hi: int) -> int:
        return self._rng.randint(lo, hi)

    def choice(self, seq):
        return self._rng.choice(seq)

    def shuffle(self, seq) -> None:
        self._rng.shuffle(seq)

    def sample(self, seq, k: int):
        return self._rng.sample(seq, k)

    def expovariate(self, rate: float) -> float:
        return self._rng.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)

    def chance(self, probability: float) -> bool:
        """True with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._rng.random() < probability

    def __repr__(self) -> str:
        return f"DeterministicRandom({self.path})"
