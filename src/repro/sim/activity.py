"""Cooperative activities (overlapped execution).

Paper, section 4.1: "concurrency is the norm in a distributed system and
program executions are truly overlapped".  The activity runtime lets tests
and the transaction machinery run several logical threads of control against
the one virtual clock.  An activity is a Python generator that yields
scheduling primitives:

* ``Sleep(ms)``      — resume after virtual time passes,
* ``WaitFor(pred)``  — resume when the predicate becomes true (polled on a
  virtual-time tick, or woken explicitly via :meth:`ActivityRuntime.kick`),
* any other yielded value is treated as ``Sleep(0)`` (a cooperative yield).

Activities interleave deterministically: ties on the clock are broken by
scheduling order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional

from repro.sim.scheduler import Scheduler


@dataclass
class Sleep:
    """Yield from an activity: resume after *delay* virtual ms."""

    delay: float = 0.0


@dataclass
class WaitFor:
    """Yield from an activity: resume once *predicate* returns True."""

    predicate: Callable[[], bool]
    poll_interval: float = 1.0
    timeout: Optional[float] = None


class ActivityTimeout(Exception):
    """Raised inside an activity whose WaitFor timed out."""


class Activity:
    """A logical thread of control driven by the activity runtime."""

    def __init__(self, runtime: "ActivityRuntime", name: str,
                 generator: Generator) -> None:
        self.runtime = runtime
        self.name = name
        self._gen = generator
        self.done = False
        self.result: Any = None
        self.error: Optional[BaseException] = None

    @property
    def failed(self) -> bool:
        return self.error is not None

    def _advance(self, to_throw: Optional[BaseException] = None) -> None:
        if self.done:
            return
        try:
            if to_throw is not None:
                yielded = self._gen.throw(to_throw)
            else:
                yielded = next(self._gen)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            return
        except BaseException as exc:  # noqa: BLE001 - recorded, not hidden
            self.done = True
            self.error = exc
            return
        self.runtime._reschedule(self, yielded)

    def __repr__(self) -> str:
        state = "done" if self.done else "running"
        return f"Activity({self.name}, {state})"


class ActivityRuntime:
    """Runs activities against a scheduler's virtual clock."""

    def __init__(self, scheduler: Scheduler) -> None:
        self.scheduler = scheduler
        self.activities: List[Activity] = []
        self._waiters: List[tuple] = []  # (activity, WaitFor, deadline)

    def spawn(self, generator: Generator, name: str = "") -> Activity:
        """Start a new activity; it takes its first step at the current time."""
        activity = Activity(self, name or f"activity-{len(self.activities)}",
                            generator)
        self.activities.append(activity)
        self.scheduler.after(0.0, activity._advance,
                             label=f"start:{activity.name}")
        return activity

    def _reschedule(self, activity: Activity, yielded: Any) -> None:
        if isinstance(yielded, Sleep):
            self.scheduler.after(yielded.delay, activity._advance,
                                 label=f"wake:{activity.name}")
        elif isinstance(yielded, WaitFor):
            deadline = (None if yielded.timeout is None
                        else self.scheduler.now + yielded.timeout)
            self._waiters.append((activity, yielded, deadline))
            self.scheduler.after(0.0, self._poll_waiters, label="poll")
        else:
            self.scheduler.after(0.0, activity._advance,
                                 label=f"yield:{activity.name}")

    def _poll_waiters(self) -> None:
        still_waiting = []
        for activity, wait, deadline in self._waiters:
            if wait.predicate():
                self.scheduler.after(0.0, activity._advance,
                                     label=f"ready:{activity.name}")
            elif deadline is not None and self.scheduler.now >= deadline:
                timeout = ActivityTimeout(
                    f"{activity.name} wait timed out after {wait.timeout}ms")
                self.scheduler.after(
                    0.0, lambda a=activity, t=timeout: a._advance(t),
                    label=f"timeout:{activity.name}")
            else:
                still_waiting.append((activity, wait, deadline))
        self._waiters = still_waiting
        if self._waiters:
            interval = min(w.poll_interval for _, w, _ in self._waiters)
            self.scheduler.after(interval, self._poll_waiters, label="poll")

    def kick(self) -> None:
        """Re-evaluate waiting predicates immediately (state changed)."""
        if self._waiters:
            self.scheduler.after(0.0, self._poll_waiters, label="kick")

    def run_all(self, max_events: int = 1_000_000) -> None:
        """Drive the scheduler until every activity has finished.

        Raises the first activity error encountered (after the run) so test
        failures inside activities are not swallowed.
        """
        self.scheduler.run_until_idle(max_events=max_events)
        stuck = [a for a in self.activities if not a.done]
        if stuck:
            raise RuntimeError(f"activities never completed: {stuck}")
        for activity in self.activities:
            if activity.error is not None:
                raise activity.error
