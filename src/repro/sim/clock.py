"""Virtual time.

All latencies in the platform are expressed in virtual milliseconds.  The
clock only moves when the scheduler runs an event or when a synchronous
message transit charges time to it.
"""

from __future__ import annotations


class VirtualClock:
    """A monotonically increasing virtual clock (milliseconds).

    ``__slots__`` because every scheduler event batch and every message
    transit touches the clock: the instances are tiny and hot.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by *delta* ms and return the new time."""
        if delta < 0:
            raise ValueError(f"clock cannot run backwards (delta={delta})")
        self._now += delta
        return self._now

    def advance_to(self, when: float) -> float:
        """Move time forward to *when* (no-op if already past it)."""
        if when > self._now:
            self._now = when
        return self._now

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.3f})"
