"""Discrete-event scheduler.

Asynchronous platform behaviour — announcements, group multicast delivery,
heartbeats, lease expiry, GC sweeps — is expressed as events on this queue.
``run_until_idle`` drains the queue (advancing the virtual clock to each
event's due time), which is how tests and benchmarks let in-flight protocol
activity settle.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.sim.clock import VirtualClock


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordered by (time, sequence) for determinism."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        self.cancelled = True


class Scheduler:
    """An event queue bound to a :class:`VirtualClock`."""

    def __init__(self, clock: Optional[VirtualClock] = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self.events_run = 0

    @property
    def now(self) -> float:
        return self.clock.now

    def at(self, when: float, action: Callable[[], None],
           label: str = "") -> Event:
        """Schedule *action* at absolute virtual time *when*."""
        if when < self.clock.now:
            when = self.clock.now
        event = Event(when, next(self._seq), action, label)
        heapq.heappush(self._queue, event)
        return event

    def after(self, delay: float, action: Callable[[], None],
              label: str = "") -> Event:
        """Schedule *action* after *delay* ms of virtual time."""
        return self.at(self.clock.now + max(0.0, delay), action, label)

    def every(self, interval: float, action: Callable[[], None],
              label: str = "") -> Event:
        """Schedule a repeating action.  Cancel the returned event to stop.

        The returned event object stays valid across firings: cancellation
        is checked before each repetition.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        handle = Event(self.clock.now + interval, next(self._seq),
                       lambda: None, label)

        def fire() -> None:
            if handle.cancelled:
                return
            action()
            if not handle.cancelled:
                self.after(interval, fire, label)

        handle.action = fire
        heapq.heappush(self._queue, handle)
        return handle

    def pending(self) -> int:
        """Number of non-cancelled events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            self.events_run += 1
            event.action()
            return True
        return False

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Drain the queue.  Returns the number of events run."""
        count = 0
        while self.step():
            count += 1
            if count > max_events:
                raise RuntimeError(
                    f"scheduler did not go idle within {max_events} events; "
                    f"possible event loop")
        return count

    def run_until(self, deadline: float, max_events: int = 1_000_000) -> int:
        """Run events with time <= deadline, then set the clock there."""
        count = 0
        while self._queue:
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if event.time > deadline:
                break
            self.step()
            count += 1
            if count > max_events:
                raise RuntimeError("run_until exceeded max_events")
        self.clock.advance_to(deadline)
        return count
