"""Discrete-event scheduler.

Asynchronous platform behaviour — announcements, group multicast delivery,
heartbeats, lease expiry, GC sweeps — is expressed as events on this queue.
``run_until_idle`` drains the queue (advancing the virtual clock to each
event's due time), which is how tests and benchmarks let in-flight protocol
activity settle.

The queue is an event wheel over a plain tuple heap: entries are
``(time, seq, event)`` triples so ordering never compares (or even
touches) the event objects, :class:`Event` is a ``__slots__`` record
with O(1) cancellation (a flag checked at fire time — nothing is
removed from the heap), and the drain loops fire same-instant batches
with a single clock advance.  All observable semantics — same-instant
FIFO by schedule order, past events clamped to *now*, cancelled events
never firing, repeating events re-arming after each firing — are
pinned by ``tests/test_sim_clock_scheduler.py``.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, List, Optional, Tuple

from repro.sim.clock import VirtualClock


class Event:
    """A scheduled callback handle.  Cancellation is O(1): the flag is
    honoured when the wheel reaches the entry."""

    __slots__ = ("time", "seq", "action", "label", "cancelled")

    def __init__(self, time: float, seq: int,
                 action: Callable[[], None], label: str = "") -> None:
        self.time = time
        self.seq = seq
        self.action = action
        self.label = label
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return (f"Event(t={self.time}, seq={self.seq}, "
                f"label={self.label!r}{state})")


class Scheduler:
    """An event wheel bound to a :class:`VirtualClock`."""

    __slots__ = ("clock", "_queue", "_seq", "events_run")

    def __init__(self, clock: Optional[VirtualClock] = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self.events_run = 0

    @property
    def now(self) -> float:
        return self.clock.now

    def at(self, when: float, action: Callable[[], None],
           label: str = "") -> Event:
        """Schedule *action* at absolute virtual time *when*."""
        if when < self.clock.now:
            when = self.clock.now
        seq = self._seq
        self._seq = seq + 1
        event = Event(when, seq, action, label)
        heappush(self._queue, (when, seq, event))
        return event

    def after(self, delay: float, action: Callable[[], None],
              label: str = "") -> Event:
        """Schedule *action* after *delay* ms of virtual time."""
        return self.at(self.clock.now + max(0.0, delay), action, label)

    def every(self, interval: float, action: Callable[[], None],
              label: str = "") -> Event:
        """Schedule a repeating action.  Cancel the returned event to stop.

        The returned event object stays valid across firings: cancellation
        is checked before each repetition.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        seq = self._seq
        self._seq = seq + 1
        handle = Event(self.clock.now + interval, seq, lambda: None, label)

        def fire() -> None:
            if handle.cancelled:
                return
            action()
            if not handle.cancelled:
                self.after(interval, fire, label)

        handle.action = fire
        heappush(self._queue, (handle.time, seq, handle))
        return handle

    def pending(self) -> int:
        """Number of non-cancelled events still queued."""
        return sum(1 for _, _, event in self._queue
                   if not event.cancelled)

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        queue = self._queue
        while queue:
            when, _, event = heappop(queue)
            if event.cancelled:
                continue
            self.clock.advance_to(when)
            self.events_run += 1
            event.action()
            return True
        return False

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Drain the queue.  Returns the number of events run."""
        queue = self._queue
        advance_to = self.clock.advance_to
        count = 0
        while queue:
            when, _, event = heappop(queue)
            if event.cancelled:
                continue
            # One clock advance covers the whole same-instant batch.
            advance_to(when)
            while True:
                self.events_run += 1
                event.action()
                count += 1
                if count > max_events:
                    raise RuntimeError(
                        f"scheduler did not go idle within {max_events} "
                        f"events; possible event loop")
                event = None
                while queue and queue[0][0] == when:
                    _, _, peer = heappop(queue)
                    if not peer.cancelled:
                        event = peer
                        break
                if event is None:
                    break
        return count

    def run_until(self, deadline: float, max_events: int = 1_000_000) -> int:
        """Run events with time <= deadline, then set the clock there."""
        queue = self._queue
        advance_to = self.clock.advance_to
        count = 0
        while queue:
            when = queue[0][0]
            if when > deadline:
                break
            _, _, event = heappop(queue)
            if event.cancelled:
                continue
            advance_to(when)
            self.events_run += 1
            event.action()
            count += 1
            if count > max_events:
                raise RuntimeError("run_until exceeded max_events")
        advance_to(deadline)
        return count
