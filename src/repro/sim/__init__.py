"""Deterministic discrete-event simulation substrate.

The paper's distributed-system properties — variable latency, overlapped
execution, partial failure — are reproduced on a single machine by running
everything against a virtual clock and an event scheduler.  Nothing in the
platform reads the wall clock or global random state, so every test and
benchmark is exactly reproducible from a seed.
"""

from repro.sim.clock import VirtualClock
from repro.sim.scheduler import Scheduler, Event
from repro.sim.rand import DeterministicRandom
from repro.sim.activity import ActivityRuntime, Activity, Sleep, WaitFor

__all__ = [
    "VirtualClock",
    "Scheduler",
    "Event",
    "DeterministicRandom",
    "ActivityRuntime",
    "Activity",
    "Sleep",
    "WaitFor",
]
