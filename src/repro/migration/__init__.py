"""Migration transparency (paper section 5.5).

"An object has to take the responsibility for moving itself and its
interfaces ... It also allows the object to delay the migration until a
time convenient to other activities using the object."  The migrator asks
the object (``odp_ready_to_move``), snapshots it in its own compact form
(``odp_snapshot``), reinstates it at the destination, leaves a forwarding
stub behind, and registers the change of location.
"""

from repro.migration.migrator import Migrator

__all__ = ["Migrator"]
