"""Object migration between capsules.

The migration path:

1. ask the object whether it is ready (``odp_ready_to_move``),
2. snapshot its state ("the snapshot is moved to another location and
   immediately re-activated", section 5.5),
3. withdraw the interface from the source capsule, leaving a forwarding
   stub so in-flight references repair cheaply,
4. export a new instance at the destination under the *same* interface
   identity with a bumped epoch,
5. register the change with the relocation service.

Interface identity is stable across moves — that is what makes the move
invisible to reference holders.
"""

from __future__ import annotations

from typing import Optional

from repro.comp.reference import InterfaceRef
from repro.errors import MigrationError
from repro.tx.versions import restore_snapshot, take_snapshot


class Migrator:
    """Domain service that moves objects between capsules."""

    def __init__(self, domain) -> None:
        self.domain = domain
        self.migrations = 0
        self.refusals = 0
        #: Virtual-ms charged per migrated state byte-equivalent; the
        #: snapshot transfer itself is priced as one network message.
        self.transfer_overhead_ms = 0.5

    def migrate(self, source_capsule, interface_id: str,
                target_capsule, leave_forward: bool = True) -> InterfaceRef:
        """Move one interface's object; returns the new reference."""
        if source_capsule is target_capsule:
            raise MigrationError("source and target capsules are the same")
        interface = source_capsule.interfaces.get(interface_id)
        if interface is None:
            raise MigrationError(
                f"no interface {interface_id} in {source_capsule.name}")
        implementation = interface.implementation
        if implementation is None:
            raise MigrationError(
                f"interface {interface_id} has no active implementation")

        ready = getattr(implementation, "odp_ready_to_move", None)
        if callable(ready) and not ready():
            self.refusals += 1
            raise MigrationError(
                f"object behind {interface_id} refused to move "
                f"(not ready)")

        snapshot = take_snapshot(implementation)
        new_implementation = object.__new__(type(implementation))
        restore_snapshot(new_implementation, snapshot)

        # Charge the state transfer as a network message when inter-node.
        network = self.domain.network
        src_node = source_capsule.nucleus.node_address
        dst_node = target_capsule.nucleus.node_address
        if src_node != dst_node:
            size = len(repr(snapshot))
            network.scheduler.clock.advance(
                network.latency.delay(src_node, dst_node, size,
                                      network.jitter_rng)
                + self.transfer_overhead_ms)

        old_epoch = interface.epoch
        constraints = interface.annotations.get("constraints")
        source_capsule.withdraw(interface_id)
        # A restarted node may hold a stale pre-crash record of the same
        # identity; the newer epoch evicts it.
        target_capsule.evict_stale(interface_id, old_epoch + 1)
        new_ref = target_capsule.export(
            new_implementation,
            signature=interface.signature,
            constraints=constraints,
            interface_id=interface_id,
            epoch=old_epoch + 1)

        if leave_forward:
            source_capsule.forwards[interface_id] = new_ref
        self.domain.relocator.update(new_ref)
        self.migrations += 1
        return new_ref

    def co_locate(self, source_capsule, interface_id: str,
                  client_capsule) -> InterfaceRef:
        """Move an object next to its client "to reduce access time and
        network traffic" (section 5.4)."""
        return self.migrate(source_capsule, interface_id, client_capsule)
