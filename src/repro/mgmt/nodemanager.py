"""The node manager.

Holds declarative *server specs* for one node.  ``boot()`` (run at start
and after every restart) creates the capsules, instantiates and exports
the default servers and advertises them via the domain trader.  The
management service is itself an exported ADT, so other nodes manage this
one through perfectly ordinary ODP invocations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.comp.constraints import EnvironmentConstraints
from repro.comp.model import OdpObject, operation, signature_of
from repro.comp.reference import InterfaceRef


@dataclass
class ServerSpec:
    """Declarative description of one default server."""

    name: str
    capsule_name: str
    factory: Callable[[], Any]
    constraints: Optional[EnvironmentConstraints] = None
    #: Trader advertisement: properties dict, or None to skip trading.
    advertise: Optional[Dict[str, Any]] = None
    service_type: Optional[str] = None


@dataclass
class RunningServer:
    spec: ServerSpec
    ref: InterfaceRef
    offer_id: Optional[str] = None
    running: bool = True


class NodeManager:
    """Boot, start, stop and advertise servers on one node."""

    def __init__(self, nucleus) -> None:
        self.nucleus = nucleus
        self.specs: List[ServerSpec] = []
        self.servers: Dict[str, RunningServer] = {}
        self.boots = 0
        self._management_ref: Optional[InterfaceRef] = None

    @property
    def domain(self):
        return self.nucleus.domain

    def declare(self, spec: ServerSpec) -> None:
        """Add a default server to be created at every boot."""
        if any(s.name == spec.name for s in self.specs):
            raise ValueError(f"duplicate server spec {spec.name!r}")
        self.specs.append(spec)

    # -- lifecycle --------------------------------------------------------------

    def boot(self) -> List[RunningServer]:
        """(Re)create all declared servers and advertise them."""
        self.boots += 1
        started = []
        for spec in self.specs:
            if spec.name in self.servers and \
                    self.servers[spec.name].running:
                continue
            started.append(self.start(spec.name))
        if self._management_ref is None:
            self._export_management()
        return started

    def start(self, name: str) -> RunningServer:
        spec = self._spec(name)
        capsule = self._capsule(spec.capsule_name)
        implementation = spec.factory()
        ref = capsule.export(implementation,
                             constraints=spec.constraints)
        offer_id = None
        if spec.advertise is not None and self.domain is not None:
            offer_id = self.domain.trader.export(
                ref.signature, ref,
                properties=dict(spec.advertise,
                                node=self.nucleus.node_address),
                service_type=spec.service_type)
        server = RunningServer(spec, ref, offer_id)
        self.servers[name] = server
        return server

    def stop(self, name: str) -> None:
        server = self.servers.get(name)
        if server is None or not server.running:
            raise KeyError(f"server {name!r} is not running")
        capsule = self._capsule(server.spec.capsule_name)
        capsule.close(server.ref.interface_id)
        if server.offer_id is not None and self.domain is not None:
            self.domain.trader.withdraw(server.offer_id)
        server.running = False

    def status(self) -> Dict[str, bool]:
        return {name: s.running for name, s in self.servers.items()}

    # -- internals ----------------------------------------------------------------

    def _spec(self, name: str) -> ServerSpec:
        for spec in self.specs:
            if spec.name == name:
                return spec
        raise KeyError(f"no server spec named {name!r}")

    def _capsule(self, name: str):
        if name in self.nucleus.capsules:
            return self.nucleus.capsules[name]
        return self.nucleus.create_capsule(name)

    def _export_management(self) -> None:
        capsule = self._capsule("management")
        service = ManagementService(self)
        self._management_ref = capsule.export(service)
        if self.domain is not None:
            self.domain.trader.export(
                signature_of(ManagementService), self._management_ref,
                properties={"node": self.nucleus.node_address,
                            "role": "management"},
                service_type="management")

    @property
    def management_ref(self) -> Optional[InterfaceRef]:
        return self._management_ref


class ManagementService(OdpObject):
    """Remote-invocable management interface for one node."""

    def __init__(self, manager: NodeManager) -> None:
        self._manager = manager

    @operation(returns=[[str]], readonly=True)
    def list_servers(self):
        return sorted(self._manager.servers)

    @operation(params=[str], returns=[bool], readonly=True)
    def is_running(self, name):
        server = self._manager.servers.get(name)
        return bool(server and server.running)

    @operation(params=[str])
    def start_server(self, name):
        self._manager.start(name)

    @operation(params=[str])
    def stop_server(self, name):
        self._manager.stop(name)

    @operation(returns=[int], readonly=True)
    def boot_count(self):
        return self._manager.boots

    @operation(returns=["any"], readonly=True)
    def node_health(self):
        """Observed liveness of every domain node, as judged by the
        supervisor's failure detector (empty when no supervisor runs —
        absence of monitoring is not evidence either way)."""
        domain = self._manager.domain
        if domain is None or domain._supervisor is None:
            return {}
        detector = domain.supervisor.detector
        return {address: detector.node_alive(address)
                for address in sorted(domain.nuclei)}
