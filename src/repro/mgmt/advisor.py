"""Transparency selection guidelines.

Section 7.4 asks for "management guidelines about when to select
particular transparencies and what kinds of resource management policy
to apply".  The advisor reads the monitors' counters for one interface
and produces concrete, explainable recommendations — the guidelines as
executable policy rather than a manual.

Heuristics (each tagged with its trigger so operators can audit them):

* high lock contention / deadlocks -> consider read_spread replication
  or splitting the interface;
* writes but no failure transparency -> select failure transparency;
* checkpoint cadence far from the write rate -> retune it;
* long idle + active in memory -> select resource transparency;
* guard denials dominate -> review the policy (or the clients);
* remote-heavy read-mostly service -> consider replication for
  availability / co-location migration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class Recommendation:
    interface_id: str
    action: str
    reason: str
    severity: str = "advice"  # "advice" | "warning"

    def __str__(self) -> str:
        return f"[{self.severity}] {self.interface_id}: {self.action} " \
               f"({self.reason})"


class TransparencyAdvisor:
    """Derives selection guidance from observed mechanism behaviour."""

    def __init__(self, domain,
                 contention_threshold: float = 0.2,
                 idle_threshold_ms: float = 30_000.0,
                 replay_backlog_threshold: int = 20) -> None:
        self.domain = domain
        self.contention_threshold = contention_threshold
        self.idle_threshold_ms = idle_threshold_ms
        self.replay_backlog_threshold = replay_backlog_threshold

    def review_interface(self, capsule, interface) -> List[Recommendation]:
        found: List[Recommendation] = []
        interface_id = interface.interface_id
        constraints = interface.annotations.get("constraints")
        served = max(1, interface.invocations_served)

        concurrency = interface.annotations.get("concurrency_layer")
        if concurrency is not None:
            pressure = (concurrency.busy_rejections
                        + concurrency.deadlocks) / served
            if concurrency.deadlocks > 0:
                found.append(Recommendation(
                    interface_id,
                    "review transaction scopes or lock ordering",
                    f"{concurrency.deadlocks} deadlocks observed",
                    severity="warning"))
            if pressure > self.contention_threshold:
                found.append(Recommendation(
                    interface_id,
                    "consider read_spread replication or splitting the "
                    "interface",
                    f"lock contention on {pressure:.0%} of invocations"))

        checkpoint = interface.annotations.get("checkpoint_layer")
        if checkpoint is None and constraints is not None and \
                constraints.concurrency and served > 10:
            found.append(Recommendation(
                interface_id,
                "select failure transparency",
                "transactional state is volatile: a crash loses it"))
        if checkpoint is not None:
            from repro.recovery.checkpoint import log_key
            backlog = self.domain.repository.log_length(
                log_key(interface_id))
            if backlog > self.replay_backlog_threshold:
                found.append(Recommendation(
                    interface_id,
                    "lower the checkpoint interval",
                    f"{backlog} writes await replay at recovery "
                    f"(interval {checkpoint.spec.checkpoint_every})"))

        guard = interface.annotations.get("guard_layer")
        if guard is not None and guard.denied > guard.allowed:
            found.append(Recommendation(
                interface_id,
                "review the security policy or investigate the callers",
                f"{guard.denied} denials vs {guard.allowed} grants",
                severity="warning"))

        last_used = interface.annotations.get("last_used", 0.0)
        idle = self.domain.scheduler.now - last_used
        if interface.active and idle > self.idle_threshold_ms and \
                (constraints is None or not constraints.resource):
            found.append(Recommendation(
                interface_id,
                "select resource transparency (passivate when idle)",
                f"idle for {idle:.0f} virtual ms yet held in memory"))
        return found

    def review_domain(self) -> List[Recommendation]:
        found: List[Recommendation] = []
        for nucleus in self.domain.nuclei.values():
            for capsule in nucleus.capsules.values():
                for interface in capsule.interfaces.values():
                    found.extend(self.review_interface(capsule, interface))
        return found
