"""Transparency monitoring.

Collects the counters every mechanism layer already maintains into one
management snapshot — "identification of points where network and system
management information can contribute to the provision of transparency"
(section 7.4).  Pure read-side: it never perturbs the mechanisms.
"""

from __future__ import annotations

from typing import Any, Dict


class TransparencyMonitor:
    """Domain-wide snapshot of transparency-mechanism activity."""

    def __init__(self, domain) -> None:
        self.domain = domain

    def interface_report(self) -> Dict[str, Dict[str, Any]]:
        """Per-interface mechanism counters across all capsules."""
        report: Dict[str, Dict[str, Any]] = {}
        for nucleus in self.domain.nuclei.values():
            for capsule in nucleus.capsules.values():
                for interface in capsule.interfaces.values():
                    entry: Dict[str, Any] = {
                        "node": nucleus.node_address,
                        "capsule": capsule.name,
                        "state": interface.state.value,
                        "epoch": interface.epoch,
                        "served": interface.invocations_served,
                        "layers": [
                            layer.name for layer in
                            interface.annotations.get("server_layers", [])
                        ],
                    }
                    guard = interface.annotations.get("guard_layer")
                    if guard is not None:
                        entry["guard"] = {"allowed": guard.allowed,
                                          "denied": guard.denied}
                    concurrency = interface.annotations.get(
                        "concurrency_layer")
                    if concurrency is not None:
                        entry["concurrency"] = {
                            "transactional": concurrency.transactional_ops,
                            "autocommit": concurrency.autocommit_ops,
                            "deadlocks": concurrency.deadlocks,
                            "busy": concurrency.busy_rejections,
                        }
                    checkpoint = interface.annotations.get(
                        "checkpoint_layer")
                    if checkpoint is not None:
                        entry["failure"] = {
                            "checkpoints": checkpoint.checkpoints_taken,
                            "logged": checkpoint.entries_logged,
                        }
                    report[interface.interface_id] = entry
        return report

    def domain_report(self) -> Dict[str, Any]:
        """Domain-service counters: relocation, trading, tx, security..."""
        domain = self.domain
        report: Dict[str, Any] = {"domain": domain.name}
        if domain._relocator is not None:
            relocator = domain.relocator
            # Chase churn aggregated over every client-side relocation
            # layer in the domain: how often bindings actually had to be
            # repaired, and from which source (hint vs. lookup).
            repairs = stale_hints = chases = 0
            for nucleus in domain.nuclei.values():
                for layer in nucleus.relocation_layers:
                    repairs += layer.repairs
                    stale_hints += layer.hint_repairs
                    chases += layer.lookup_repairs
            report["relocation"] = {
                "known": relocator.known(),
                "registrations": relocator.registrations,
                "updates": relocator.updates,
                "lookups": relocator.lookups,
                "misses": relocator.misses,
                "repairs": repairs,
                "stale_hints": stale_hints,
                "chases": chases,
            }
        if domain._tx_manager is not None:
            manager = domain.tx_manager
            report["transactions"] = {
                "begun": manager.begun,
                "committed": manager.committed,
                "aborted": manager.aborted,
                "control_messages": manager.control_messages,
            }
        if domain._trader is not None:
            trader = domain.trader
            report["trading"] = {
                "offers": trader.offer_count(),
                "exports": trader.exports,
                "imports": trader.imports,
                "link_traversals": trader.link_traversals,
            }
        if domain._authority is not None:
            authority = domain.authority
            report["security"] = {
                "verifications": authority.verifications,
                "rejections": authority.rejections,
                "audit_records": len(domain.audit),
            }
        if domain._migrator is not None:
            report["migration"] = {
                "migrations": domain.migrator.migrations,
                "refusals": domain.migrator.refusals,
            }
        if domain._recovery is not None:
            report["recovery"] = {
                "recoveries": domain.recovery.recoveries,
                "replayed": domain.recovery.replayed_entries,
            }
        if domain._collector is not None:
            collector = domain.collector
            report["gc"] = {
                "sweeps": collector.sweeps,
                "collected": collector.total_collected,
                "lease_grants": collector.leases.grants,
                "lease_renewals": collector.leases.renewals,
            }
        if domain._groups is not None:
            report["groups"] = {
                "suspicions": domain.groups.suspicions,
            }
            partitions = dict(domain.groups.partition_stats())
            if domain._supervisor is not None:
                supervisor = domain.supervisor
                merges = supervisor.reconciliation_mttr_ms
                partitions["minority_holds"] = supervisor.minority_holds
                partitions["partition_merges"] = \
                    supervisor.partition_merges
                partitions["reconciliation_mttr_ms"] = {
                    "merges": len(merges),
                    "mean": (round(sum(merges) / len(merges), 3)
                             if merges else 0.0),
                    "max": round(max(merges), 3) if merges else 0.0,
                }
            report["partitions"] = partitions
        if domain._shards is not None:
            report["shard"] = domain.shards.report()
        if domain._leases is not None:
            lease = dict(domain.leases.report())
            clients = {"clients": 0, "hits": 0, "misses": 0, "fills": 0,
                       "skipped_fills": 0, "expired": 0,
                       "invalidations": 0, "flushes": 0,
                       "acquire_failures": 0, "renewals_skipped": 0,
                       "entries": 0}
            for holder in sorted(domain.leases.clients):
                stats = domain.leases.clients[holder].stats()
                clients["clients"] += 1
                for key in ("hits", "misses", "fills", "skipped_fills",
                            "expired", "invalidations", "flushes",
                            "acquire_failures", "renewals_skipped",
                            "entries"):
                    clients[key] += stats[key]
            lease["cache"] = clients
            report["lease"] = lease
        if domain._supervisor is not None:
            report["heal"] = domain.supervisor.report()
        report["resilience"] = self.resilience_report()
        report["perf"] = self.perf_report()
        report["overload"] = self.overload_report()
        if domain._tracer is not None:
            report["trace"] = self.trace_report()
        return report

    def perf_report(self) -> Dict[str, Any]:
        """Throughput machinery counters: admission control, codec plan
        caches and invocation batchers across the domain's nuclei."""
        admission = {"controllers": 0, "admitted": 0, "queued": 0,
                     "shed": 0, "max_depth": 0, "total_wait_ms": 0.0}
        plans = {"caches": 0, "plans": 0, "hits": 0, "misses": 0,
                 "invalidations": 0}
        batching = {"batchers": 0, "calls": 0, "batches_sent": 0,
                    "invocations_batched": 0, "retransmits": 0,
                    "busy_failures": 0}
        busy_retries = 0
        for nucleus in self.domain.nuclei.values():
            controller = nucleus.admission
            if controller is not None:
                stats = controller.stats()
                admission["controllers"] += 1
                admission["admitted"] += stats["admitted"]
                admission["queued"] += stats["queued"]
                admission["shed"] += stats["shed"]
                admission["max_depth"] = max(admission["max_depth"],
                                             stats["max_depth"])
                admission["total_wait_ms"] += stats["total_wait_ms"]
            for cache in nucleus.plan_caches:
                stats = cache.stats()
                plans["caches"] += 1
                plans["plans"] += stats["plans"]
                plans["hits"] += stats["hits"]
                plans["misses"] += stats["misses"]
                plans["invalidations"] += stats["invalidations"]
            for batcher in nucleus.batchers:
                stats = batcher.stats()
                batching["batchers"] += 1
                batching["calls"] += stats["calls"]
                batching["batches_sent"] += stats["batches_sent"]
                batching["invocations_batched"] += \
                    stats["invocations_batched"]
                batching["retransmits"] += stats["retransmits"]
                batching["busy_failures"] += stats["busy_failures"]
            for transport in nucleus.transports:
                busy_retries += transport.busy_retries
        return {"admission": admission, "plan_cache": plans,
                "batching": batching, "busy_retries": busy_retries}

    def overload_report(self) -> Dict[str, Any]:
        """Overload-robustness counters: deadline-gate sheds, per-class
        admission/shed tallies, brownout state and retry-budget balance
        across the domain's nuclei.  Always present (zeros when the
        machinery is idle) so dashboards need no existence checks."""
        gate = {"expired_on_arrival": 0, "expired_post_queue": 0}
        classes = {"class_admitted": [0, 0, 0, 0],
                   "class_shed": [0, 0, 0, 0],
                   "brownout_shed": 0}
        brownout = {"level": 0, "escalations": 0, "relaxations": 0}
        budgets = {"paths": 0, "first_attempts": 0,
                   "retries_granted": 0, "retries_denied": 0,
                   "balance": 0.0}
        expired_evictions = 0
        for nucleus in self.domain.nuclei.values():
            stats = nucleus.deadline_gate.stats()
            gate["expired_on_arrival"] += stats["expired_on_arrival"]
            gate["expired_post_queue"] += stats["expired_post_queue"]
            controller = nucleus.admission
            if controller is not None and \
                    hasattr(controller, "class_stats"):
                per_class = controller.class_stats()
                for i in range(4):
                    classes["class_admitted"][i] += \
                        per_class["admitted"][i]
                    classes["class_shed"][i] += per_class["shed"][i]
                classes["brownout_shed"] += per_class["brownout_shed"]
                if controller.brownout is not None:
                    b_stats = controller.brownout.stats()
                    brownout["level"] = max(brownout["level"],
                                            b_stats["level"])
                    brownout["escalations"] += b_stats["escalations"]
                    brownout["relaxations"] += b_stats["relaxations"]
            totals = nucleus.retry_budgets.totals()
            budgets["paths"] += totals["paths"]
            budgets["first_attempts"] += totals["first_attempts"]
            budgets["retries_granted"] += totals["retries_granted"]
            budgets["retries_denied"] += totals["retries_denied"]
            for snapshot in nucleus.retry_budgets.snapshot().values():
                budgets["balance"] += snapshot["tokens"]
            expired_evictions += nucleus.reply_cache.expired_evictions
        budgets["balance"] = round(budgets["balance"], 6)
        return {"deadline_gate": gate, "classes": classes,
                "brownout": brownout, "retry_budgets": budgets,
                "expired_reply_evictions": expired_evictions}

    def trace_report(self) -> Dict[str, Any]:
        """Causal-tracing snapshot: collector counters plus the
        per-layer span counts and latency distributions."""
        tracer = self.domain.tracer
        report: Dict[str, Any] = tracer.stats()
        layers: Dict[str, Any] = {}
        snapshot = tracer.metrics.snapshot()
        for name, value in snapshot.get("counters", {}).items():
            if name.startswith("layer.") and name.endswith(".spans"):
                layer = name[len("layer."):-len(".spans")]
                layers.setdefault(layer, {})["spans"] = value
        for name, value in snapshot.get("histograms", {}).items():
            if name.startswith("layer.") and name.endswith(".ms"):
                layer = name[len("layer."):-len(".ms")]
                entry = layers.setdefault(layer, {})
                entry["total_ms"] = value["sum"]
                entry["mean_ms"] = (value["sum"] / value["count"]
                                    if value["count"] else 0.0)
        report["layers"] = layers
        return report

    def resilience_report(self) -> Dict[str, Any]:
        """Aggregate the resilience layer's counters across the domain:
        retries, backoff waits, breaker activity, suppressed duplicates."""
        totals: Dict[str, Any] = {
            "retries": 0,
            "backoff_wait_ms": 0.0,
            "path_failovers": 0,
            "breaker_short_circuits": 0,
            "breaker_trips": 0,
            "breaker_rejections": 0,
            "breakers_open": 0,
            "duplicates_suppressed": 0,
            "replies_cached": 0,
            "reply_cache_evictions": 0,
        }
        for nucleus in self.domain.nuclei.values():
            stats = nucleus.resilience
            totals["retries"] += stats.retries
            totals["backoff_wait_ms"] += stats.backoff_wait_ms
            totals["path_failovers"] += stats.path_failovers
            totals["breaker_short_circuits"] += \
                stats.breaker_short_circuits
            breakers = nucleus.breakers.snapshot()
            totals["breaker_trips"] += breakers["trips"]
            totals["breaker_rejections"] += breakers["rejections"]
            totals["breakers_open"] += breakers["open"]
            cache = nucleus.reply_cache
            totals["duplicates_suppressed"] += cache.duplicates_suppressed
            totals["replies_cached"] += cache.replies_cached
            totals["reply_cache_evictions"] += cache.evictions
        return totals

    def network_report(self) -> Dict[str, Any]:
        network = self.domain.network
        return {
            "messages": network.total_messages,
            "bytes": network.total_bytes,
            "drops": network.faults.drops,
            "per_node": {
                node.address: {
                    "sent": node.stats.messages_sent,
                    "received": node.stats.messages_received,
                }
                for node in network.nodes()
                if self.domain.owns_node(node.address)
            },
        }
