"""Load balancing through migration transparency.

Section 3 lists "migration of programs or data to balance loads and
reduce access times" among the details transparency should simplify, and
section 5.4 names load balancing as a reason interfaces move.  The
balancer is a management-plane consumer of the platform's own
mechanisms: it reads per-interface service counts, decides which movable
objects should live elsewhere, and uses the ordinary migrator — clients
repair through location transparency, none the wiser.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import MigrationError


@dataclass
class BalanceMove:
    """One executed rebalancing migration."""

    interface_id: str
    from_node: str
    to_node: str
    load_share: float


def observed_liveness(domain):
    """The domain's default node-health judgment, or ``None``.

    The same source of truth ``ManagementService.node_health`` reports
    from: the running supervisor's observation-based verdicts (the
    vantage panel).  Liveness is judged from observed behaviour, never
    from fault-plan ground truth — and with no running supervisor there
    simply is no opinion.
    """
    if domain is None or getattr(domain, "_supervisor", None) is None:
        return None
    supervisor = domain.supervisor
    if not supervisor.running:
        return None
    return supervisor.node_alive


def placement_candidates(domain, capsule_name: str, liveness=None,
                         exclude=()):
    """Healthy placement targets for a replica or recovered object.

    Returns ``[(nucleus, capsule), ...]`` for every node that hosts a
    *capsule_name* capsule, is not in *exclude*, and is alive according
    to *liveness* (a ``node_address -> bool`` callable — typically the
    supervisor's failure detector; liveness is judged from observed
    behaviour, never from fault-plan ground truth).  When *liveness* is
    omitted it defaults to :func:`observed_liveness`, so placement
    never targets a node the domain's own health judgment calls dead or
    suspect.  Candidates are ordered least-loaded first (total
    invocations served across the capsule's interfaces, plus the
    outstanding lease grants against them — every write a node hosts
    fans invalidations out to its interfaces' cache holders, so lease
    demand is load the invocation counters alone understate), ties
    broken by address for determinism.
    """
    if liveness is None:
        liveness = observed_liveness(domain)
    leases = getattr(domain, "_leases", None)
    candidates = []
    for address in sorted(domain.nuclei):
        if address in exclude:
            continue
        if liveness is not None and not liveness(address):
            continue
        nucleus = domain.nuclei[address]
        capsule = nucleus.capsules.get(capsule_name)
        if capsule is None:
            continue
        load = sum(interface.invocations_served
                   for interface in capsule.interfaces.values())
        if leases is not None:
            load += leases.node_lease_load(capsule)
        candidates.append((load, address, nucleus, capsule))
    candidates.sort(key=lambda entry: (entry[0], entry[1]))
    return [(nucleus, capsule) for _, _, nucleus, capsule in candidates]


class LoadBalancer:
    """Periodically evens interface load across a domain's nodes.

    Load is measured as invocations served since the previous pass
    (a rate, not a lifetime total).  A pass moves at most
    ``max_moves_per_pass`` interfaces, hottest first, from the most
    loaded node to the least loaded — bounded rebalancing rather than
    oscillation.  Objects may veto (``odp_ready_to_move``); the balancer
    respects that and moves on.
    """

    def __init__(self, domain, target_capsule_name: str = "services",
                 imbalance_threshold: float = 2.0,
                 max_moves_per_pass: int = 1) -> None:
        if imbalance_threshold <= 1.0:
            raise ValueError("threshold must exceed 1.0")
        self.domain = domain
        self.target_capsule_name = target_capsule_name
        self.imbalance_threshold = imbalance_threshold
        self.max_moves_per_pass = max_moves_per_pass
        self.moves: List[BalanceMove] = []
        self._served_at_last_pass: Dict[str, int] = {}
        self._event = None

    # -- measurement --------------------------------------------------------------

    def _node_loads(self) -> Dict[str, List[Tuple[int, str, object]]]:
        """node -> [(recent_served, interface_id, capsule)] movables."""
        loads: Dict[str, List[Tuple[int, str, object]]] = {}
        faults = self.domain.network.faults
        for address, nucleus in self.domain.nuclei.items():
            if faults.is_crashed(address):
                continue
            capsule = nucleus.capsules.get(self.target_capsule_name)
            if capsule is None:
                # Only nodes participating in this service tier are
                # balancing targets; client nodes stay out of it.
                continue
            loads[address] = []
            for interface in capsule.interfaces.values():
                previous = self._served_at_last_pass.get(
                    interface.interface_id, 0)
                recent = interface.invocations_served - previous
                loads[address].append(
                    (recent, interface.interface_id, capsule))
        return loads

    def _snapshot_counters(self) -> None:
        for nucleus in self.domain.nuclei.values():
            for capsule in nucleus.capsules.values():
                for interface in capsule.interfaces.values():
                    self._served_at_last_pass[interface.interface_id] = \
                        interface.invocations_served

    # -- the balancing pass ---------------------------------------------------------

    def rebalance(self) -> List[BalanceMove]:
        """One pass; returns the moves it made."""
        loads = self._node_loads()
        if len(loads) < 2:
            self._snapshot_counters()
            return []
        totals = {node: sum(count for count, _, _ in interfaces)
                  for node, interfaces in loads.items()}
        busiest = max(totals, key=lambda n: totals[n])
        calmest = min(totals, key=lambda n: totals[n])
        made: List[BalanceMove] = []
        if totals[busiest] > self.imbalance_threshold * \
                max(1, totals[calmest]):
            target = self.domain.nuclei[calmest].capsules[
                self.target_capsule_name]
            candidates = sorted(loads[busiest], reverse=True)
            total_busy = max(1, totals[busiest])
            for recent, interface_id, capsule in candidates:
                if len(made) >= self.max_moves_per_pass:
                    break
                if recent == 0:
                    break  # idle objects do not help balance
                try:
                    self.domain.migrator.migrate(capsule, interface_id,
                                                 target)
                except MigrationError:
                    continue  # vetoed or otherwise unmovable
                move = BalanceMove(interface_id, busiest, calmest,
                                   recent / total_busy)
                made.append(move)
                self.moves.append(move)
        self._snapshot_counters()
        return made

    # -- scheduling -------------------------------------------------------------------

    def start(self, interval_ms: float = 1_000.0) -> None:
        self._event = self.domain.scheduler.every(
            interval_ms, self.rebalance, label="load-balance")

    def stop(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None
