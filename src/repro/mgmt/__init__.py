"""Management (paper sections 6 and 7.4).

Two pieces: the *node manager* — "the provision of a node manager for each
computer in an ODP system which links the computer into the system after a
restart, creating any servers on that machine which are required by
default and advertising them via the trading system ... extended to
provide a management service, accessible from other computers, for
starting and stopping servers on its own node" — and *transparency
monitoring*: "identification of management interfaces for monitoring
transparency mechanisms and changing transparency parameters".
"""

from repro.mgmt.nodemanager import NodeManager, ServerSpec, ManagementService
from repro.mgmt.monitor import TransparencyMonitor
from repro.mgmt.tuning import TransparencyTuner
from repro.mgmt.advisor import TransparencyAdvisor, Recommendation
from repro.mgmt.loadbalance import LoadBalancer, BalanceMove

__all__ = [
    "LoadBalancer",
    "BalanceMove",
    "NodeManager",
    "ServerSpec",
    "ManagementService",
    "TransparencyMonitor",
    "TransparencyTuner",
    "TransparencyAdvisor",
    "Recommendation",
]
