"""Changing transparency parameters at runtime.

Section 7.4 requires "management interfaces for monitoring transparency
mechanisms and changing transparency parameters".  Monitoring lives in
:mod:`repro.mgmt.monitor`; this module is the *changing* half: knobs on
the running mechanisms, applied without rebinding clients or restarting
servers.
"""

from __future__ import annotations

from repro.comp.constraints import FailureSpec


class TransparencyTuner:
    """Runtime knobs over one domain's transparency mechanisms."""

    def __init__(self, domain) -> None:
        self.domain = domain
        self.adjustments = 0

    # -- failure transparency ----------------------------------------------------

    def set_checkpoint_interval(self, interface_id: str,
                                checkpoint_every: int) -> None:
        """Re-tune a checkpointed interface's steady-state/recovery
        trade-off (see benchmark C8 for the curve being tuned)."""
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        layer = self._checkpoint_layer(interface_id)
        old = layer.spec
        layer.spec = FailureSpec(checkpoint_every=checkpoint_every,
                                 recovery_node=old.recovery_node)
        self.adjustments += 1

    def checkpoint_now(self, interface_id: str) -> None:
        """Force an immediate checkpoint (e.g. before planned work)."""
        self._checkpoint_layer(interface_id)._checkpoint()
        self.adjustments += 1

    def _checkpoint_layer(self, interface_id: str):
        interface = self._find_interface(interface_id)
        layer = interface.annotations.get("checkpoint_layer")
        if layer is None:
            raise KeyError(
                f"interface {interface_id} has no failure transparency")
        return layer

    # -- garbage collection -------------------------------------------------------

    def set_lease_ttl(self, ttl_ms: float) -> None:
        if ttl_ms <= 0:
            raise ValueError("ttl must be positive")
        self.domain.collector.leases.default_ttl_ms = ttl_ms
        self.adjustments += 1

    def set_gc_interval(self, interval_ms: float) -> None:
        collector = self.domain.collector
        collector.stop_sweeping()
        collector.start_sweeping(interval_ms=interval_ms)
        self.adjustments += 1

    # -- replication ----------------------------------------------------------------

    def set_heartbeat_interval(self, interval_ms: float) -> None:
        groups = self.domain.groups
        groups.stop_heartbeats()
        groups.start_heartbeats(interval_ms=interval_ms)
        self.adjustments += 1

    # -- lookup -----------------------------------------------------------------------

    def _find_interface(self, interface_id: str):
        for nucleus in self.domain.nuclei.values():
            for capsule in nucleus.capsules.values():
                interface = capsule.interfaces.get(interface_id)
                if interface is not None:
                    return interface
        raise KeyError(f"no interface {interface_id} in domain "
                       f"{self.domain.name}")
