"""repro — a reproduction of "The Challenge of ODP" (Herbert, 1991).

An ANSA/RM-ODP style open distributed processing platform over a
deterministic simulated network: the ADT computational model, an
engineering model of channels assembled by a transparency compiler, all
eight RM-ODP transparencies, trading, federation, security, streams,
distributed garbage collection and management — plus the enterprise and
information viewpoint languages.

Quickstart::

    from repro import World, OdpObject, operation

    class Counter(OdpObject):
        def __init__(self):
            self.value = 0

        @operation(returns=[int])
        def increment(self):
            self.value += 1
            return self.value

    world = World(seed=1)
    world.node("org", "server-node")
    world.node("org", "client-node")
    servers = world.capsule("server-node", "servers")
    clients = world.capsule("client-node", "clients")

    ref = servers.export(Counter())
    counter = world.binder_for(clients).bind(ref)
    assert counter.increment() == 1      # a real remote invocation
"""

from repro.comp.constraints import (
    EnvironmentConstraints,
    FailureSpec,
    ReplicationSpec,
    SecuritySpec,
)
from repro.comp.invocation import QoS
from repro.comp.model import OdpObject, operation, signature_of
from repro.comp.outcomes import Signal, Termination
from repro.comp.reference import InterfaceRef
from repro.engine.binder import Binder, Proxy
from repro.engine.futures import AsyncInvoker, Future
from repro.net.fault import (
    CrashWindow,
    CutWindow,
    FaultSchedule,
    FlakyWindow,
    GrayWindow,
)
from repro.resilience import CircuitBreaker, ReplyCache, RetryPolicy
from repro.runtime import World
from repro.trace import MetricsRegistry, TraceCollector, TraceContext
from repro.util.freeze import FrozenRecord, deep_freeze

__version__ = "1.0.0"

__all__ = [
    "World",
    "OdpObject",
    "operation",
    "signature_of",
    "Signal",
    "Termination",
    "InterfaceRef",
    "Binder",
    "Proxy",
    "AsyncInvoker",
    "Future",
    "QoS",
    "EnvironmentConstraints",
    "ReplicationSpec",
    "FailureSpec",
    "SecuritySpec",
    "FrozenRecord",
    "deep_freeze",
    "RetryPolicy",
    "CircuitBreaker",
    "ReplyCache",
    "FaultSchedule",
    "FlakyWindow",
    "CrashWindow",
    "GrayWindow",
    "CutWindow",
    "TraceContext",
    "TraceCollector",
    "MetricsRegistry",
    "__version__",
]
