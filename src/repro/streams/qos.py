"""Per-flow quality-of-service monitoring.

"It may be that the flows need to be controlled or that events occurring
within the streams should be monitored" — the monitor records every frame
arrival and can judge the flow against its contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.streams.stream import StreamQoS


@dataclass
class FlowStats:
    frames_received: int
    frames_lost: int
    loss_rate: float
    mean_latency_ms: float
    max_latency_ms: float
    mean_jitter_ms: float
    contract_violations: List[str]


class QoSMonitor:
    """Records frame arrivals for one flow and judges the contract."""

    def __init__(self, flow_name: str, qos: StreamQoS) -> None:
        self.flow_name = flow_name
        self.qos = qos
        self.arrivals: List[tuple] = []  # (seq, sent_at, arrived_at)
        self._last_arrival: Optional[float] = None
        self._interarrivals: List[float] = []
        self.highest_seq = 0

    def record(self, seq: int, sent_at: float, arrived_at: float) -> None:
        self.arrivals.append((seq, sent_at, arrived_at))
        if seq > self.highest_seq:
            self.highest_seq = seq
        if self._last_arrival is not None:
            self._interarrivals.append(arrived_at - self._last_arrival)
        self._last_arrival = arrived_at

    # -- statistics ------------------------------------------------------------

    def latencies(self) -> List[float]:
        return [arrived - sent for _, sent, arrived in self.arrivals]

    def jitter_ms(self) -> float:
        """Mean absolute deviation of inter-arrival times from nominal."""
        if len(self._interarrivals) < 2:
            return 0.0
        nominal = 1000.0 / self.qos.rate_hz
        deviations = [abs(gap - nominal) for gap in self._interarrivals]
        return sum(deviations) / len(deviations)

    def stats(self) -> FlowStats:
        received = len(self.arrivals)
        lost = max(0, self.highest_seq - received)
        expected = max(self.highest_seq, 1)
        loss_rate = lost / expected
        lats = self.latencies()
        mean_latency = sum(lats) / len(lats) if lats else 0.0
        max_latency = max(lats) if lats else 0.0
        jitter = self.jitter_ms()

        violations = []
        if loss_rate > self.qos.max_loss:
            violations.append(
                f"loss {loss_rate:.3f} > contract {self.qos.max_loss}")
        if mean_latency > self.qos.max_latency_ms:
            violations.append(
                f"mean latency {mean_latency:.2f}ms > contract "
                f"{self.qos.max_latency_ms}ms")
        if jitter > self.qos.max_jitter_ms:
            violations.append(
                f"jitter {jitter:.2f}ms > contract "
                f"{self.qos.max_jitter_ms}ms")
        return FlowStats(received, lost, loss_rate, mean_latency,
                         max_latency, jitter, violations)

    @property
    def healthy(self) -> bool:
        return not self.stats().contract_violations
