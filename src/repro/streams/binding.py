"""Explicit stream binding.

Operational interfaces bind implicitly (holding a reference suffices);
streams need *explicit* binding parameterised by a template of enabled
flows.  The result of binding is (1) scheduled frame production over the
simulated network and (2) a control interface — a genuine ADT object that
can be exported and invoked remotely — offering start/stop/rate/status,
exactly as section 7.2 prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.comp.model import OdpObject, operation
from repro.errors import StreamError
from repro.streams.qos import QoSMonitor
from repro.streams.stream import FlowSpec, StreamEndpoint


@dataclass
class FlowBinding:
    """One enabled flow within a binding."""

    producer: StreamEndpoint
    consumer: StreamEndpoint
    producer_flow: str
    consumer_flow: str
    spec: FlowSpec
    monitor: QoSMonitor
    seq: int = 0
    frames_sent: int = 0
    event: object = None
    rate_hz: float = 0.0


class StreamManager:
    """Creates endpoints, routes frames, performs explicit binding."""

    def __init__(self, network, scheduler) -> None:
        self.network = network
        self.scheduler = scheduler
        self._endpoints: Dict[str, StreamEndpoint] = {}
        self._routes: Dict[Tuple[str, str], List[FlowBinding]] = {}
        self._handled_nodes: set = set()
        self._counter = 0
        self.bindings: List["StreamBinding"] = []

    # -- endpoints ----------------------------------------------------------------

    def create_endpoint(self, node_address: str, name: str,
                        flows: List[FlowSpec]) -> StreamEndpoint:
        self._counter += 1
        endpoint_id = f"stream-ep-{self._counter}"
        endpoint = StreamEndpoint(endpoint_id, node_address, flows, name)
        self._endpoints[endpoint_id] = endpoint
        if node_address not in self._handled_nodes:
            self.network.node(node_address).on_deliver(
                "stream", self._on_frame)
            self._handled_nodes.add(node_address)
        return endpoint

    def _on_frame(self, message) -> None:
        headers = message.headers
        endpoint = self._endpoints.get(headers.get("endpoint", ""))
        if endpoint is None:
            return
        flow = headers.get("flow", "")
        seq = int(headers.get("seq", "0"))
        sent_at = float(headers.get("sent_at", "0"))
        arrived_at = self.scheduler.now
        endpoint.deliver(flow, seq, message.payload, sent_at, arrived_at)
        for binding in self._routes.get((endpoint.endpoint_id, flow), []):
            binding.monitor.record(seq, sent_at, arrived_at)

    # -- explicit binding ----------------------------------------------------------

    def bind(self, producer: StreamEndpoint, consumer: StreamEndpoint,
             template: Optional[Dict[str, str]] = None,
             control_capsule=None) -> "StreamBinding":
        """Tie endpoints together according to *template*.

        ``template`` maps producer out-flow names to consumer in-flow
        names; ``None`` enables every same-named compatible pair.  Media
        types must match — that is the stream-type check.
        """
        pairs = self._resolve_template(producer, consumer, template)
        flows = []
        for out_name, in_name in pairs:
            out_spec = producer.flow(out_name)
            in_spec = consumer.flow(in_name)
            if out_spec.media != in_spec.media:
                raise StreamError(
                    f"flow media mismatch: {out_name!r} is "
                    f"{out_spec.media}, {in_name!r} is {in_spec.media}")
            monitor = QoSMonitor(in_name, in_spec.qos)
            flow = FlowBinding(producer, consumer, out_name, in_name,
                               out_spec, monitor,
                               rate_hz=out_spec.qos.rate_hz)
            flows.append(flow)
            self._routes.setdefault(
                (consumer.endpoint_id, in_name), []).append(flow)
        binding = StreamBinding(self, flows)
        self.bindings.append(binding)
        if control_capsule is not None:
            binding.control_ref = control_capsule.export(
                BindingControl(binding))
        return binding

    def _resolve_template(self, producer, consumer, template):
        if template is not None:
            return sorted(template.items())
        pairs = []
        for name, spec in sorted(producer.flows.items()):
            if spec.direction == "out" and name in consumer.flows and \
                    consumer.flows[name].direction == "in":
                pairs.append((name, name))
        if not pairs:
            raise StreamError(
                "no compatible flows between endpoints; supply a template")
        return pairs


class StreamBinding:
    """A live set of flows with start/stop/rate control."""

    def __init__(self, manager: StreamManager,
                 flows: List[FlowBinding]) -> None:
        self.manager = manager
        self.flows = flows
        self.running = False
        self.control_ref = None

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        for flow in self.flows:
            self._schedule(flow)

    def _schedule(self, flow: FlowBinding) -> None:
        interval = 1000.0 / flow.rate_hz
        flow.event = self.manager.scheduler.every(
            interval, lambda f=flow: self._emit(f),
            label=f"stream:{flow.producer_flow}")

    def _emit(self, flow: FlowBinding) -> None:
        flow.seq += 1
        payload = flow.producer.source_for(flow.producer_flow)(flow.seq)
        flow.frames_sent += 1
        self.manager.network.post(
            flow.producer.node_address, flow.consumer.node_address,
            payload, kind="stream",
            headers={
                "endpoint": flow.consumer.endpoint_id,
                "flow": flow.consumer_flow,
                "seq": str(flow.seq),
                "sent_at": repr(self.manager.scheduler.now),
            })

    def stop(self) -> None:
        self.running = False
        for flow in self.flows:
            if flow.event is not None:
                flow.event.cancel()
                flow.event = None

    def set_rate(self, flow_name: str, rate_hz: float) -> None:
        if rate_hz <= 0:
            raise StreamError("rate must be positive")
        for flow in self.flows:
            if flow.producer_flow == flow_name:
                flow.rate_hz = rate_hz
                if self.running and flow.event is not None:
                    flow.event.cancel()
                    self._schedule(flow)
                return
        raise StreamError(f"binding has no flow {flow_name!r}")

    def monitor_for(self, consumer_flow: str) -> QoSMonitor:
        for flow in self.flows:
            if flow.consumer_flow == consumer_flow:
                return flow.monitor
        raise StreamError(f"binding has no consumer flow {consumer_flow!r}")


class BindingControl(OdpObject):
    """The ADT control interface produced by explicit binding."""

    def __init__(self, binding: StreamBinding) -> None:
        self._binding = binding

    @operation()
    def start(self):
        self._binding.start()

    @operation()
    def stop(self):
        self._binding.stop()

    @operation(params=[str, float])
    def set_rate(self, flow_name, rate_hz):
        self._binding.set_rate(flow_name, rate_hz)

    @operation(returns=[str], readonly=True)
    def status(self):
        state = "running" if self._binding.running else "stopped"
        flows = ", ".join(
            f"{f.producer_flow}@{f.rate_hz}Hz" for f in self._binding.flows)
        return f"{state}: {flows}"

    @operation(params=[str], returns=[int, int], readonly=True)
    def flow_counts(self, consumer_flow):
        monitor = self._binding.monitor_for(consumer_flow)
        stats = monitor.stats()
        return stats.frames_received, stats.frames_lost
