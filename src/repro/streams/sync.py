"""Inter-stream synchronisation.

Multi-media "brings questions of ... how to handle synchronization between
streams of voice, video and data" (section 7.2).  The controller pairs
frames from two flows by their send timestamps (e.g. audio at 50 Hz with
video at 25 Hz) and releases them together once both sides of a pair are
present, measuring the skew a player would have to absorb.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple


@dataclass
class SyncedPair:
    """One released presentation unit."""

    primary_seq: int
    secondary_seq: int
    primary_sent: float
    secondary_sent: float
    released_at: float

    @property
    def skew_ms(self) -> float:
        return abs(self.primary_sent - self.secondary_sent)


class SyncController:
    """Pairs two flows for synchronised presentation.

    ``tolerance_ms`` is the maximum send-time difference for two frames to
    belong to the same presentation instant.  Attach it to two endpoints'
    sinks via :meth:`sink_for`.
    """

    def __init__(self, primary_name: str, secondary_name: str,
                 clock, tolerance_ms: float = 20.0,
                 on_release: Optional[Callable] = None) -> None:
        self.primary_name = primary_name
        self.secondary_name = secondary_name
        self.clock = clock
        self.tolerance_ms = tolerance_ms
        self.on_release = on_release
        self._buffers: Dict[str, List[Tuple[int, float]]] = {
            primary_name: [], secondary_name: []}
        self.released: List[SyncedPair] = []
        self.discarded = 0

    def sink_for(self, flow_name: str) -> Callable:
        """A sink callback for one of the two flows."""
        if flow_name not in self._buffers:
            raise KeyError(f"controller does not manage flow {flow_name!r}")

        def sink(seq: int, payload: bytes, sent_at: float,
                 arrived_at: float) -> None:
            self._buffers[flow_name].append((seq, sent_at))
            self._match()

        return sink

    def _match(self) -> None:
        primary = self._buffers[self.primary_name]
        secondary = self._buffers[self.secondary_name]
        while primary and secondary:
            p_seq, p_sent = primary[0]
            s_seq, s_sent = secondary[0]
            delta = p_sent - s_sent
            if abs(delta) <= self.tolerance_ms:
                primary.pop(0)
                secondary.pop(0)
                pair = SyncedPair(p_seq, s_seq, p_sent, s_sent,
                                  self.clock.now)
                self.released.append(pair)
                if self.on_release is not None:
                    self.on_release(pair)
            elif delta > 0:
                # Primary frame is newer: the old secondary frame will
                # never find a partner.
                secondary.pop(0)
                self.discarded += 1
            else:
                primary.pop(0)
                self.discarded += 1

    # -- measurements -----------------------------------------------------------

    def mean_skew_ms(self) -> float:
        if not self.released:
            return 0.0
        return sum(p.skew_ms for p in self.released) / len(self.released)

    def max_skew_ms(self) -> float:
        if not self.released:
            return 0.0
        return max(p.skew_ms for p in self.released)

    def pending(self) -> Dict[str, int]:
        return {name: len(buf) for name, buf in self._buffers.items()}
