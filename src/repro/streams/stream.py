"""Stream interfaces: typed endpoints for continuous flows."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable

from repro.errors import StreamError
from repro.types.signature import (
    InterfaceSignature,
    OperationSig,
    TerminationSig,
    STREAM,
)
from repro.types.terms import BYTES, INT


@dataclass(frozen=True)
class StreamQoS:
    """Quality-of-service contract for one flow."""

    #: Frames per virtual second the producer emits.
    rate_hz: float = 25.0
    #: Maximum acceptable one-way frame latency.
    max_latency_ms: float = 50.0
    #: Maximum acceptable inter-arrival jitter.
    max_jitter_ms: float = 10.0
    #: Fraction of frames that may be lost before the contract is broken.
    max_loss: float = 0.02


@dataclass(frozen=True)
class FlowSpec:
    """One named flow within a stream interface."""

    name: str
    direction: str  # "out" (producer) or "in" (consumer)
    media: str = "data"  # "audio" | "video" | "data"
    qos: StreamQoS = StreamQoS()

    def __post_init__(self):
        if self.direction not in ("out", "in"):
            raise StreamError(
                f"flow {self.name!r}: direction must be 'out' or 'in'")


def stream_signature(name: str,
                     flows: Iterable[FlowSpec]) -> InterfaceSignature:
    """A STREAM-kind signature so stream interfaces trade and type-check.

    Each flow appears as a pseudo-operation carrying (seq, payload); the
    structural conformance rules then give stream compatibility for free.
    ADT-style invocation on such a signature is rejected by the binder.
    """
    operations = []
    for flow in flows:
        operations.append(OperationSig(
            f"flow_{flow.direction}_{flow.media}_{flow.name}",
            params=[INT, BYTES],
            terminations=[TerminationSig("ok", ())],
            announcement=True))
    return InterfaceSignature(name, operations, kind=STREAM)


class StreamEndpoint:
    """A stream interface instance on a node.

    Producers attach a ``source`` per out-flow (``seq -> bytes``);
    consumers attach a ``sink`` per in-flow
    (``(seq, payload, sent_at, arrived_at) -> None``).
    """

    def __init__(self, endpoint_id: str, node_address: str,
                 flows: Iterable[FlowSpec], name: str = "") -> None:
        self.endpoint_id = endpoint_id
        self.node_address = node_address
        self.name = name or endpoint_id
        self.flows: Dict[str, FlowSpec] = {f.name: f for f in flows}
        self._sources: Dict[str, Callable[[int], bytes]] = {}
        self._sinks: Dict[str, Callable] = {}

    def signature(self) -> InterfaceSignature:
        return stream_signature(self.name, self.flows.values())

    def flow(self, name: str) -> FlowSpec:
        try:
            return self.flows[name]
        except KeyError:
            raise StreamError(
                f"endpoint {self.endpoint_id} has no flow {name!r}"
            ) from None

    def attach_source(self, flow_name: str,
                      source: Callable[[int], bytes]) -> None:
        if self.flow(flow_name).direction != "out":
            raise StreamError(
                f"flow {flow_name!r} is not an out-flow")
        self._sources[flow_name] = source

    def attach_sink(self, flow_name: str, sink: Callable) -> None:
        if self.flow(flow_name).direction != "in":
            raise StreamError(f"flow {flow_name!r} is not an in-flow")
        self._sinks[flow_name] = sink

    def source_for(self, flow_name: str) -> Callable[[int], bytes]:
        source = self._sources.get(flow_name)
        if source is None:
            raise StreamError(
                f"endpoint {self.endpoint_id}: no source attached to "
                f"flow {flow_name!r}")
        return source

    def deliver(self, flow_name: str, seq: int, payload: bytes,
                sent_at: float, arrived_at: float) -> None:
        sink = self._sinks.get(flow_name)
        if sink is not None:
            sink(seq, payload, sent_at, arrived_at)

    def __repr__(self) -> str:
        return (f"StreamEndpoint({self.endpoint_id} on "
                f"{self.node_address}, flows={sorted(self.flows)})")
