"""Streams and explicit binding (paper section 7.2).

"A stream interface ... represents a point at which any form of
interaction [can] occur, including continuous flows such as video.  A
stream is described in terms of its type and its quality of service
requirements.  A stream interface can be traded and passed in arguments
and results just as an operations interface: there is however no means
for ADT style interaction at a stream interface.  ... For streams a means
of explicit binding must be defined ... the binding process produces an
interface containing control and management functions."

Built here: typed stream endpoints (tradable — they have STREAM-kind
signatures), an explicit binder parameterised by a flow template, frame
transport over the simulated network, per-flow QoS monitoring, and an
inter-stream synchroniser (the lip-sync problem).
"""

from repro.streams.stream import FlowSpec, StreamQoS, StreamEndpoint, stream_signature
from repro.streams.qos import QoSMonitor
from repro.streams.binding import StreamBinding, BindingControl, StreamManager
from repro.streams.sync import SyncController
from repro.streams.adapt import AdaptiveRateController

__all__ = [
    "AdaptiveRateController",
    "FlowSpec",
    "StreamQoS",
    "StreamEndpoint",
    "stream_signature",
    "QoSMonitor",
    "StreamBinding",
    "BindingControl",
    "StreamManager",
    "SyncController",
]
