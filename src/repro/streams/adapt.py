"""Closed-loop stream rate adaptation.

Section 7.2: binding produces "an interface containing control and
management functions" and stream events "should be monitored".  The
adaptive controller closes that loop: it watches a flow's QoS monitor on
a timer and drives the binding's rate control — backing off while the
contract is violated, probing back up while it holds.
"""

from __future__ import annotations

from typing import List


class AdaptiveRateController:
    """Monitor-driven rate control for one flow of a binding.

    * every ``interval_ms`` of virtual time, examine the recent QoS;
    * on contract violation: multiply the rate by ``backoff`` (down to
      ``min_rate_hz``);
    * on a clean period: multiply by ``recovery`` (up to the nominal
      rate the flow started with).
    """

    def __init__(self, binding, flow_name: str, scheduler,
                 interval_ms: float = 500.0,
                 backoff: float = 0.5,
                 recovery: float = 1.25,
                 min_rate_hz: float = 1.0) -> None:
        if not 0 < backoff < 1:
            raise ValueError("backoff must be in (0, 1)")
        if recovery <= 1:
            raise ValueError("recovery must exceed 1")
        self.binding = binding
        self.flow_name = flow_name
        self.scheduler = scheduler
        self.interval_ms = interval_ms
        self.backoff = backoff
        self.recovery = recovery
        self.min_rate_hz = min_rate_hz
        flow = self._flow()
        self.nominal_rate_hz = flow.rate_hz
        self.monitor = binding.monitor_for(flow_name)
        self._seen_frames = 0
        self._event = None
        #: (virtual time, new rate, reason) — the adaptation trace.
        self.history: List[tuple] = []

    def _flow(self):
        for flow in self.binding.flows:
            if flow.consumer_flow == self.flow_name:
                return flow
        raise KeyError(f"binding has no flow {self.flow_name!r}")

    # -- the control loop -------------------------------------------------------

    def start(self) -> None:
        if self._event is None:
            self._event = self.scheduler.every(
                self.interval_ms, self._tick,
                label=f"rate-adapt:{self.flow_name}")

    def stop(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _recent_violations(self) -> List[str]:
        """Contract verdict over the window since the last tick."""
        stats = self.monitor.stats()
        return stats.contract_violations

    def _tick(self) -> None:
        flow = self._flow()
        violations = self._recent_violations()
        if violations:
            new_rate = max(self.min_rate_hz,
                           flow.rate_hz * self.backoff)
            reason = violations[0]
        else:
            new_rate = min(self.nominal_rate_hz,
                           flow.rate_hz * self.recovery)
            reason = "contract holding"
        if abs(new_rate - flow.rate_hz) > 1e-9:
            self.binding.set_rate(flow.producer_flow, new_rate)
            self.history.append((self.scheduler.now, new_rate, reason))

    @property
    def current_rate_hz(self) -> float:
        return self._flow().rate_hz

    def adapted_down(self) -> bool:
        return any(rate < self.nominal_rate_hz
                   for _, rate, _ in self.history)
