"""Reference leases.

A lease is a time-bounded claim by a holder (a client capsule) on an
exported interface.  Binding grants one; every invocation renews it.  An
interface with no unexpired leases is unreferenced as far as the collector
can prove, which is what makes distributed collection safe without a
global reference census.
"""

from __future__ import annotations

from typing import Dict, List, Set


class LeaseTable:
    """interface_id -> {holder -> expiry time}."""

    def __init__(self, default_ttl_ms: float = 10_000.0) -> None:
        self.default_ttl_ms = default_ttl_ms
        self._leases: Dict[str, Dict[str, float]] = {}
        self.grants = 0
        self.renewals = 0

    def grant(self, interface_id: str, holder: str, now: float,
              ttl_ms: float = None) -> None:
        ttl = ttl_ms if ttl_ms is not None else self.default_ttl_ms
        holders = self._leases.setdefault(interface_id, {})
        if holder in holders:
            self.renewals += 1
        else:
            self.grants += 1
        holders[holder] = now + ttl

    def renew(self, interface_id: str, holder: str, now: float,
              ttl_ms: float = None) -> None:
        if interface_id in self._leases and \
                holder in self._leases[interface_id]:
            ttl = ttl_ms if ttl_ms is not None else self.default_ttl_ms
            self._leases[interface_id][holder] = now + ttl
            self.renewals += 1

    def release(self, interface_id: str, holder: str) -> None:
        holders = self._leases.get(interface_id)
        if holders is not None:
            holders.pop(holder, None)

    def live_holders(self, interface_id: str, now: float) -> Set[str]:
        holders = self._leases.get(interface_id, {})
        return {h for h, expiry in holders.items() if expiry > now}

    def has_live_lease(self, interface_id: str, now: float) -> bool:
        return bool(self.live_holders(interface_id, now))

    def prune(self, now: float) -> int:
        """Drop expired leases; returns how many were dropped."""
        dropped = 0
        for interface_id in list(self._leases):
            holders = self._leases[interface_id]
            for holder in list(holders):
                if holders[holder] <= now:
                    del holders[holder]
                    dropped += 1
            if not holders:
                del self._leases[interface_id]
        return dropped

    def forget(self, interface_id: str) -> None:
        self._leases.pop(interface_id, None)

    def tracked(self) -> List[str]:
        return sorted(self._leases)
