"""The idle-time collector.

"Many of the computers in large distributed systems spend significant
periods idle (overnight for example) and can contribute resources towards
the garbage collection process" — sweeps are scheduled on the virtual
clock, typically at long intervals, and examine only passive and closed
interfaces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.comp.interface import InterfaceState
from repro.gc.leases import LeaseTable


@dataclass
class SweepReport:
    """What one collection pass did."""

    examined: int = 0
    collected: List[str] = field(default_factory=list)
    closed_reclaimed: List[str] = field(default_factory=list)
    demoted: List[str] = field(default_factory=list)
    leases_pruned: int = 0


class Collector:
    """Per-domain distributed garbage collector."""

    def __init__(self, domain, default_ttl_ms: float = 10_000.0,
                 archive_after_ms: float = 60_000.0) -> None:
        self.domain = domain
        self.leases = LeaseTable(default_ttl_ms)
        #: Passive objects untouched this long are demoted to the archive
        #: tier ("progressively moved out to less and less accessible
        #: storage media").
        self.archive_after_ms = archive_after_ms
        self.sweeps = 0
        self.total_collected = 0
        self.sweep_event = None

    # -- reference tracking hooks ---------------------------------------------------

    def note_binding(self, ref, holder: str) -> None:
        """A client bound to the reference: grant a lease."""
        self.leases.grant(ref.interface_id, holder,
                          self.domain.scheduler.now)

    def note_use(self, interface_id: str, holder: str) -> None:
        """Use renews the holder's claim."""
        self.leases.renew(interface_id, holder, self.domain.scheduler.now)

    def release(self, interface_id: str, holder: str) -> None:
        self.leases.release(interface_id, holder)

    # -- collection -------------------------------------------------------------------

    def _capsules(self):
        for nucleus in self.domain.nuclei.values():
            for capsule in nucleus.capsules.values():
                yield capsule

    def sweep(self) -> SweepReport:
        """One collection pass over the domain's capsules."""
        now = self.domain.scheduler.now
        report = SweepReport()
        report.leases_pruned = self.leases.prune(now)
        self.sweeps += 1

        for capsule in list(self._capsules()):
            for interface in list(capsule.interfaces.values()):
                report.examined += 1
                if interface.state == InterfaceState.CLOSED:
                    self._reclaim(capsule, interface)
                    report.closed_reclaimed.append(interface.interface_id)
                    continue
                if interface.state != InterfaceState.PASSIVE:
                    continue  # active objects cannot be garbage
                interface_id = interface.interface_id
                if self.leases.has_live_lease(interface_id, now):
                    last = interface.annotations.get("last_used", 0.0)
                    record_key = f"passive:{interface_id}"
                    if now - last >= self.archive_after_ms and \
                            self.domain.repository.contains(record_key):
                        self._demote(record_key)
                        report.demoted.append(interface_id)
                    continue
                self._reclaim(capsule, interface)
                self.domain.repository.delete(f"passive:{interface_id}")
                report.collected.append(interface_id)

        self.total_collected += len(report.collected)
        return report

    def _reclaim(self, capsule, interface) -> None:
        interface_id = interface.interface_id
        capsule.interfaces.pop(interface_id, None)
        capsule.forwards.pop(interface_id, None)
        self.domain.relocator.unregister(interface_id)
        self.leases.forget(interface_id)

    def _demote(self, record_key: str) -> None:
        record = self.domain.repository.fetch(record_key)
        record.kind = "archived"
        self.domain.repository.store(record)

    # -- scheduling --------------------------------------------------------------------

    def start_sweeping(self, interval_ms: float = 30_000.0) -> None:
        self.sweep_event = self.domain.scheduler.every(
            interval_ms, self.sweep, label="gc-sweep")

    def stop_sweeping(self) -> None:
        if self.sweep_event is not None:
            self.sweep_event.cancel()
            self.sweep_event = None
