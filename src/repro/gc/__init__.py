"""Distributed garbage collection (paper section 7.3).

"The ODP computational model is based on interfaces to objects being
accessed via references: this implies that objects must persist for at
least as long as there are clients holding references to their interfaces.
This potentially puts a server's resources at the mercy of its clients."

The defences built here are exactly the paper's list:

* explicit close — a closed interface errors on access and is reclaimed,
* leases — binding grants a time-bounded claim, renewed by use, so dead
  clients cannot pin objects forever,
* idle-time collection — "only passive objects need be considered -
  active ones cannot be garbage by definition": the collector sweeps
  passivated objects whose leases have all expired,
* archival demotion — long-unused passive objects move to less accessible
  storage and "can be moved back on demand".
"""

from repro.gc.leases import LeaseTable
from repro.gc.collector import Collector

__all__ = ["LeaseTable", "Collector"]
