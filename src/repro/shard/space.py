"""The sharded object space: one logical object, many placed shards.

A :class:`ShardSpace` partitions a keyed object across the domain's
nodes.  Keys hash (``repro.util.ids.stable_hash``) onto a fixed set of
shard slots; the slots are placed on nodes by the consistent-hash
:class:`~repro.shard.ring.PlacementRing`.  Each shard is an ordinary
exported interface (``<name>.shard.<i>``), so every existing mechanism
— checkpointing, migration, relocation forwarding, recovery — applies
to shards unchanged.

Ownership is *epoch-fenced*.  The space keeps a single monotonically
increasing epoch, bumped on every ownership change; routers stamp the
epoch of the ring view they routed by into the invocation context
(``RING_KEY``, the shard analogue of the group layer's ``VIEW_KEY``),
and the :class:`ShardFenceLayer` in each shard's server stack rejects a
write *before dispatch* when the shard is fenced for an in-flight move
or when the claimed epoch is stale and this node no longer owns the
shard — the zombie-old-owner write a forwarding stub alone cannot
stop, because a crashed owner never got to install one.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.comp.constraints import EnvironmentConstraints, FailureSpec
from repro.engine.layers import ServerLayer
from repro.errors import BindingError, WrongShardError
from repro.shard.ring import PlacementRing
from repro.transparency.compiler import prepend_server_layer
from repro.util.ids import stable_hash

#: Invocation-context key carrying the router's space epoch (the shard
#: analogue of the group member layer's ``VIEW_KEY``).
RING_KEY = "shard"


class SpaceView:
    """An immutable routing snapshot: epoch + per-shard owner refs."""

    __slots__ = ("epoch", "owners", "refs")

    def __init__(self, epoch: int, owners: Dict[int, str],
                 refs: Dict[int, Any]) -> None:
        self.epoch = epoch
        self.owners = owners
        self.refs = refs

    def __repr__(self) -> str:
        return f"SpaceView(epoch={self.epoch}, shards={len(self.refs)})"


class ShardFenceLayer(ServerLayer):
    """Pre-dispatch ownership check on one shard's server stack.

    Rejection happens *before* the operation executes (like admission
    shedding), which is what makes :class:`WrongShardError` safe to
    retry: a fenced or misrouted write definitely did not run.  Reads
    pass even while fenced — the pre-cutover owner's state stays
    current until the migration lands.
    """

    name = "shard-fence"

    def __init__(self, space: "ShardSpace", index: int, node: str) -> None:
        self.space = space
        self.index = index
        self.node = node

    def handle(self, invocation, interface, next_layer):
        space = self.space
        op_sig = interface.signature.operations.get(invocation.operation)
        readonly = bool(op_sig is not None and op_sig.readonly)
        if not readonly and space.is_fenced(self.index):
            space.fenced_rejections += 1
            raise WrongShardError(
                f"shard {self.index} of {space.name} is fenced for an "
                f"in-flight migration")
        claimed = invocation.context.extra.get(RING_KEY)
        if claimed is not None and claimed != space.epoch:
            if space.owners.get(self.index) != self.node:
                # A stale router reached a node that no longer owns the
                # shard (a pre-move record on a restarted node): reject
                # before dispatch so the write cannot double-execute.
                space.fenced_rejections += 1
                raise WrongShardError(
                    f"shard {self.index} of {space.name} moved off "
                    f"{self.node} (claimed epoch {claimed}, current "
                    f"{space.epoch})")
            # Stale epoch but still the right owner: an unrelated shard
            # moved.  Serve it, count it — churn, not danger.
            space.stale_hits += 1
        if not readonly and space.record_executions:
            space.execution_log.append({
                "inv_id": invocation.invocation_id,
                "op": invocation.operation,
                "shard": self.index,
                "node": self.node,
                "owner": space.owners.get(self.index),
                "epoch": space.epoch,
            })
        return next_layer(invocation)


class ShardSpace:
    """One partitioned object: N shard slots placed over member nodes."""

    def __init__(self, domain, name: str, factory, capsules,
                 shards: int = 16, vnodes: int = 16,
                 durable: bool = True) -> None:
        if shards < 1:
            raise ValueError("a space needs at least one shard")
        if not capsules:
            raise BindingError("a shard space needs at least one capsule")
        self.domain = domain
        self.name = name
        self.factory = factory
        self.shard_count = shards
        self.durable = durable
        self.capsule_name = capsules[0].name
        self.ring = PlacementRing(vnodes=vnodes)
        #: node -> capsule, remembered across ring leaves so a
        #: restarted node can rejoin without re-registration.
        self.capsules: Dict[str, Any] = {}
        for capsule in capsules:
            node = capsule.nucleus.node_address
            if node in self.capsules:
                raise BindingError(
                    f"two capsules on node {node} in space {name}")
            self.capsules[node] = capsule
            self.ring.add_node(node)
        self.owners: Dict[int, str] = {}
        self.refs: Dict[int, Any] = {}
        self._fenced: set = set()
        self._fence_layers: Dict[int, ShardFenceLayer] = {}
        self.routers: List[Any] = []
        # Counters the monitor's "shard" section surfaces.
        self.migrations = 0
        self.recoveries = 0
        self.fenced_rejections = 0
        self.stale_hits = 0
        self.reply_entries_moved = 0
        #: Degraded-window (fence -> cutover) samples per move, ms.
        self.mttr_ms: List[float] = []
        #: Opt-in write-execution ledger for the shard_routing oracle.
        self.record_executions = False
        self.execution_log: List[Dict[str, Any]] = []

        view = self.ring.view()
        constraints = (
            EnvironmentConstraints(failure=FailureSpec(checkpoint_every=1))
            if durable else EnvironmentConstraints())
        for index in range(shards):
            node = view.owner(self.shard_id(index))
            ref = self.capsules[node].export(
                factory(), constraints=constraints,
                interface_id=self.shard_id(index))
            self.owners[index] = node
            self.refs[index] = ref
            self._attach_fence(index)
        #: Space epoch: bumped on every ownership publish; routers stamp
        #: the epoch they routed by, the fence compares.
        self.epoch = 1

    # -- key routing ---------------------------------------------------------

    def shard_id(self, index: int) -> str:
        """The stable identity of slot *index* (interface id + ring key)."""
        return f"{self.name}.shard.{index}"

    def shard_of(self, key: str) -> int:
        return stable_hash(key) % self.shard_count

    def owner_of(self, key: str) -> str:
        return self.owners[self.shard_of(key)]

    # -- views & fencing -----------------------------------------------------

    def view(self) -> SpaceView:
        return SpaceView(self.epoch, dict(self.owners), dict(self.refs))

    def fence(self, index: int) -> None:
        self._fenced.add(index)

    def unfence(self, index: int) -> None:
        self._fenced.discard(index)

    def is_fenced(self, index: int) -> bool:
        return index in self._fenced

    def publish(self, index: int, node: str, ref) -> None:
        """Cut ownership of one shard over to *node* (epoch bump)."""
        self.owners[index] = node
        self.refs[index] = ref
        self.epoch += 1
        self._attach_fence(index)

    def _attach_fence(self, index: int) -> None:
        """(Re)attach the fence to the shard's *current* interface.

        Export compiles a fresh server stack, so every move or recovery
        must re-wrap the new interface — a shard without its fence would
        accept zombie writes.
        """
        node = self.owners[index]
        capsule = self.capsules[node]
        interface = capsule.interfaces.get(self.shard_id(index))
        if interface is None:
            raise BindingError(
                f"shard {index} of {self.name} has no interface on "
                f"{node} to fence")
        layer = ShardFenceLayer(self, index, node)
        self._fence_layers[index] = layer
        prepend_server_layer(capsule, interface, layer)

    # -- membership (delegated to the rebalancer for the moves) --------------

    @property
    def rebalancer(self):
        if getattr(self, "_rebalancer", None) is None:
            from repro.shard.rebalancer import Rebalancer
            self._rebalancer = Rebalancer(self)
        return self._rebalancer

    def register_capsule(self, capsule) -> str:
        """Remember a (possibly new) member node's shard capsule."""
        node = capsule.nucleus.node_address
        existing = self.capsules.get(node)
        if existing is not None and existing is not capsule:
            raise BindingError(
                f"node {node} already registered a different capsule "
                f"in space {self.name}")
        self.capsules[node] = capsule
        return node

    # -- client binding ------------------------------------------------------

    def bind(self, client_capsule, qos=None, max_chases: int = 4):
        """Bind a client: a proxy whose ops route by their first arg."""
        from repro.engine.binder import Proxy
        from repro.engine.channel import Channel, TransportLayer
        from repro.engine.layers import MetricsLayer
        from repro.relocation.layer import RelocationLayer
        from repro.shard.router import ShardRouterLayer

        nucleus = client_capsule.nucleus
        router = ShardRouterLayer(self, max_chases=max_chases)
        layers = [MetricsLayer(), router,
                  RelocationLayer(self.domain.relocator)]
        transport = TransportLayer(nucleus, client_capsule)
        channel = Channel(self.refs[0], nucleus, client_capsule,
                          layers, transport)
        return Proxy(channel, None, default_qos=qos)

    # -- reporting -----------------------------------------------------------

    def per_node(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for index in sorted(self.owners):
            node = self.owners[index]
            counts[node] = counts.get(node, 0) + 1
        return dict(sorted(counts.items()))

    def report(self) -> Dict[str, Any]:
        samples = self.mttr_ms
        chases = sum(router.chases for router in self.routers)
        refreshes = sum(router.refreshes for router in self.routers)
        return {
            "epoch": self.epoch,
            "ring_epoch": self.ring.epoch,
            "shards": self.shard_count,
            "nodes": list(self.ring.nodes()),
            "per_node": self.per_node(),
            "migrations": self.migrations,
            "recoveries": self.recoveries,
            "fenced_rejections": self.fenced_rejections,
            "stale_hits": self.stale_hits,
            "chases": chases,
            "refreshes": refreshes,
            "reply_entries_moved": self.reply_entries_moved,
            "move_mttr_ms": {
                "moves": len(samples),
                "mean": (round(sum(samples) / len(samples), 3)
                         if samples else 0.0),
                "max": round(max(samples), 3) if samples else 0.0,
            },
        }

    def __repr__(self) -> str:
        return (f"ShardSpace({self.name}, {self.shard_count} shards, "
                f"epoch={self.epoch}, nodes={list(self.ring.nodes())})")


class ShardManager:
    """The domain's registry of shard spaces (lazy, like every service)."""

    def __init__(self, domain) -> None:
        self.domain = domain
        self._spaces: Dict[str, ShardSpace] = {}

    def create(self, name: str, factory, capsules, shards: int = 16,
               vnodes: int = 16, durable: bool = True) -> ShardSpace:
        if name in self._spaces:
            raise BindingError(f"duplicate shard space {name!r}")
        space = ShardSpace(self.domain, name, factory, capsules,
                           shards=shards, vnodes=vnodes, durable=durable)
        self._spaces[name] = space
        return space

    def get(self, name: str) -> ShardSpace:
        return self._spaces[name]

    def spaces(self) -> List[ShardSpace]:
        return [self._spaces[name] for name in sorted(self._spaces)]

    def report(self) -> Dict[str, Any]:
        return {space.name: space.report() for space in self.spaces()}
