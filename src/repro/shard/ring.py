"""The consistent-hash placement ring.

Placement is a pure function of the member node names: each node
contributes ``vnodes`` virtual points at
``stable_hash(f"{node}#{i}")`` and a key is owned by the first point at
or clockwise after ``stable_hash(key)``.  No randomness, no wall clock,
no ``hash()`` — two processes building a ring from the same node set
compute byte-identical assignments, which is what lets routers cache
ring views and compare them by epoch alone.

Membership changes bump the ring epoch and produce a fresh immutable
:class:`RingView`.  Consistent hashing gives the rebalancer its cost
bound: adding or removing one node moves only ~K/n of K keys, and every
moved key moves to (or from) exactly that node.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from typing import Dict, Iterable, List, Tuple

from repro.errors import BindingError
from repro.util.ids import stable_hash


class RingView:
    """One immutable, epoch-numbered snapshot of the placement ring."""

    __slots__ = ("epoch", "points", "nodes")

    def __init__(self, epoch: int, points: Tuple[Tuple[int, str], ...],
                 nodes: Tuple[str, ...]) -> None:
        self.epoch = epoch
        self.points = points
        self.nodes = nodes

    def owner(self, key: str) -> str:
        """The node owning *key* under this view."""
        if not self.points:
            raise BindingError("placement ring has no nodes")
        position = stable_hash(key)
        index = bisect_left(self.points, (position, ""))
        if index == len(self.points):
            index = 0  # wrap past the top of the ring
        return self.points[index][1]

    def assignment(self, keys: Iterable[str]) -> Dict[str, str]:
        """key -> owner for a whole key set (test/report convenience)."""
        return {key: self.owner(key) for key in keys}

    def digest(self, keys: Iterable[str]) -> str:
        """A byte-stable digest of this view's assignment of *keys*."""
        hasher = hashlib.sha256()
        hasher.update(str(self.epoch).encode("ascii"))
        for key in keys:
            hasher.update(f"|{key}={self.owner(key)}".encode("utf-8"))
        return hasher.hexdigest()

    def __repr__(self) -> str:
        return (f"RingView(epoch={self.epoch}, nodes={list(self.nodes)}, "
                f"{len(self.points)} points)")


class PlacementRing:
    """Mutable ring membership; every change mints a new epoch + view."""

    def __init__(self, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be at least 1")
        self.vnodes = vnodes
        self.epoch = 0
        self._nodes: List[str] = []
        self._view = RingView(0, (), ())

    def nodes(self) -> Tuple[str, ...]:
        return tuple(self._nodes)

    def has_node(self, node: str) -> bool:
        return node in self._nodes

    def add_node(self, node: str) -> RingView:
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.append(node)
        self._nodes.sort()
        return self._rebuild()

    def remove_node(self, node: str) -> RingView:
        if node not in self._nodes:
            raise ValueError(f"node {node!r} not on the ring")
        self._nodes.remove(node)
        return self._rebuild()

    def view(self) -> RingView:
        return self._view

    def _rebuild(self) -> RingView:
        points: List[Tuple[int, str]] = []
        for node in self._nodes:
            for i in range(self.vnodes):
                points.append((stable_hash(f"{node}#{i}"), node))
        points.sort()
        self.epoch += 1
        self._view = RingView(self.epoch, tuple(points),
                              tuple(self._nodes))
        return self._view

    def __repr__(self) -> str:
        return (f"PlacementRing(epoch={self.epoch}, "
                f"nodes={self._nodes}, vnodes={self.vnodes})")
