"""Sharded object space: consistent-hash placement + online rebalancing.

Growth by partitioning (ROADMAP C21): a keyed object is split over
shard slots, the slots are placed on nodes by a deterministic
consistent-hash ring, clients route per-key through a channel layer,
and membership changes migrate exactly the shards that must move —
online, epoch-fenced, with mid-traffic invocations chased
transparently.
"""

from repro.shard.rebalancer import Rebalancer, ShardMove
from repro.shard.ring import PlacementRing, RingView
from repro.shard.router import ShardRouterLayer
from repro.shard.space import (
    RING_KEY,
    ShardFenceLayer,
    ShardManager,
    ShardSpace,
    SpaceView,
)

__all__ = [
    "PlacementRing",
    "RingView",
    "Rebalancer",
    "RING_KEY",
    "ShardFenceLayer",
    "ShardManager",
    "ShardMove",
    "ShardRouterLayer",
    "ShardSpace",
    "SpaceView",
]
