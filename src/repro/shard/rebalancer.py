"""Online shard rebalancing: staged, fenced, chased — never doubled.

A membership change (join, graceful leave, detected node loss) moves
exactly the shards consistent hashing says must move.  Each move is
staged:

1. **fence** — the shard's writes are rejected pre-dispatch
   (:class:`~repro.errors.WrongShardError`, retryable) so no write can
   land in the state snapshot's blind spot;
2. **transfer** — the ordinary :class:`~repro.migration.Migrator` moves
   the state (forwarding stub, epoch bump, relocator update), and the
   source node's reply-dedup window is unioned into the target's so a
   retransmission crossing the cutover still finds its cached reply
   instead of re-executing;
3. **cutover** — ownership is published (space epoch bump) and the
   fresh interface is re-fenced;
4. **unfence** — rejected writers chase back in through their routers.

A *dead* owner cannot be migrated from; its shards are re-instated from
their checkpoints via the :class:`~repro.recovery.RecoveryManager` —
which is why spaces default to durable exports.  The pre-crash records
left on the dead node are exactly what the epoch fence exists for: when
the node restarts, a stale router's write bounces off the fence instead
of executing on a zombie shard.

Every move samples its per-shard degraded window into
``space.mttr_ms`` (detection-inclusive when the supervisor supplies
``down_since``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import OdpError


@dataclass(frozen=True)
class ShardMove:
    """One completed shard relocation."""

    index: int
    from_node: str
    to_node: str
    kind: str  # "migrate" | "recover"
    window_ms: float


class Rebalancer:
    """Drives a space's placement back to what its ring prescribes."""

    def __init__(self, space) -> None:
        self.space = space
        self.moves: List[ShardMove] = []
        self.failures = 0

    # -- membership events ---------------------------------------------------

    def node_joined(self, capsule) -> List[ShardMove]:
        """A (possibly restarted) node offers capacity: take it."""
        space = self.space
        node = space.register_capsule(capsule)
        if space.ring.has_node(node):
            return []
        space.ring.add_node(node)
        self._span("shard.join", {"space": space.name, "node": node})
        return self.rebalance()

    def node_left(self, node: str, dead: bool = False,
                  down_since: Optional[float] = None) -> List[ShardMove]:
        """Drain a node: graceful migration, or recovery when *dead*."""
        space = self.space
        if not space.ring.has_node(node):
            return []
        space.ring.remove_node(node)
        self._span("shard.leave", {"space": space.name, "node": node,
                                   "dead": dead})
        return self.rebalance(dead=frozenset((node,)) if dead else
                              frozenset(), down_since=down_since)

    # -- convergence ---------------------------------------------------------

    def rebalance(self, dead: frozenset = frozenset(),
                  down_since: Optional[float] = None) -> List[ShardMove]:
        """Move every shard whose owner disagrees with the ring."""
        space = self.space
        view = space.ring.view()
        made: List[ShardMove] = []
        for index in range(space.shard_count):
            target = view.owner(space.shard_id(index))
            if target == space.owners[index]:
                continue
            try:
                made.append(self._move(index, target, dead, down_since))
            except OdpError as exc:
                self.failures += 1
                self._span("shard.move-failed",
                           {"space": space.name, "shard": index,
                            "to": target, "error": type(exc).__name__})
        self.moves.extend(made)
        return made

    def _move(self, index: int, target: str, dead: frozenset,
              down_since: Optional[float]) -> ShardMove:
        space = self.space
        source = space.owners[index]
        clock = space.domain.scheduler.clock
        started = down_since if down_since is not None else clock.now
        space.fence(index)
        try:
            self._drain_leases(index)
            if source in dead:
                new_ref = space.domain.recovery.recover(
                    space.shard_id(index), space.capsules[target])
                space.recoveries += 1
                kind = "recover"
            else:
                new_ref = space.domain.migrator.migrate(
                    space.capsules[source], space.shard_id(index),
                    space.capsules[target])
                self._move_dedup_window(source, target)
                space.migrations += 1
                kind = "migrate"
            space.publish(index, target, new_ref)
        finally:
            space.unfence(index)
        window = clock.now - started
        space.mttr_ms.append(window)
        self._span("shard.move", {"space": space.name, "shard": index,
                                  "from": source, "to": target,
                                  "kind": kind,
                                  "window_ms": round(window, 3)})
        return ShardMove(index, source, target, kind, window)

    def _drain_leases(self, index: int) -> None:
        """Revoke client cache leases on a shard before its cutover.

        A shard in cached mode may have readers serving it from private
        caches; moving the state while those grants stand would let a
        holder whose flush message is lost keep reading the *old* copy
        after ownership changed.  Drain first: revoke every grant
        (posting flushes), then wait one grace window — the longest
        remaining grant validity — behind the fence, so by cutover any
        holder the flush never reached has self-fenced at expiry.
        """
        space = self.space
        domain = space.domain
        if domain._leases is None:
            return
        remaining = domain._leases.drain_interface(space.shard_id(index))
        if remaining > 0:
            domain.scheduler.run_until(
                domain.scheduler.clock.now + remaining)

    def _move_dedup_window(self, source: str, target: str) -> None:
        """Carry the source's reply-cache entries across the cutover.

        Entries are cached as encoded bytes in the server's native wire
        format, so the union is only possible between same-format nodes;
        a heterogeneous pair keeps the pre-existing at-least-once window
        instead.  (A dead source's window is genuinely lost — that
        ambiguity is the oracles' 0-or-1 envelope, not a duplication.)
        """
        domain = self.space.domain
        src = domain.nuclei.get(source)
        dst = domain.nuclei.get(target)
        if src is None or dst is None:
            return
        if domain.wire_format_of(source) != domain.wire_format_of(target):
            return
        self.space.reply_entries_moved += \
            dst.reply_cache.merge_from(src.reply_cache)

    # -- instrumentation -----------------------------------------------------

    def _span(self, name: str, tags: Dict) -> None:
        tracer = self.space.domain.tracer
        root = tracer.start_trace()
        tracer.span(name, "shard", root,
                    node=next(iter(sorted(self.space.capsules)), "?"),
                    tags=tags).finish()
