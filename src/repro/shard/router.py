"""The data-plane shard router.

A :class:`ShardRouterLayer` sits between the metrics layer and the
relocation layer in a client channel.  Per invocation it hashes the
routing key (the operation's first argument), swaps the channel's
reference to the owning shard's interface, and stamps the epoch of the
ring view it routed by into the invocation context (``RING_KEY``).

The router deliberately does *not* watch the space for changes: like
any cache, its view goes stale and the failure signals drive refresh —
the relocation-chase discipline.  A move that left a forwarding stub is
chased transparently by the relocation layer below; a
:class:`~repro.errors.WrongShardError` (fenced mid-move, or a zombie
pre-move record with no stub) bubbles up here, where the router
refreshes its view from the space and re-routes the same invocation.
Both retries are safe: the stub repair re-sends an invocation whose
reply is found in the migrated dedup window, and the fence rejects
before dispatch.
"""

from __future__ import annotations

from repro.comp.invocation import Invocation, InvocationKind
from repro.comp.outcomes import Termination
from repro.engine.layers import ClientLayer
from repro.errors import (
    BindingError,
    InvocationExpiredError,
    RetryBudgetExhaustedError,
    WrongShardError,
)
from repro.overload.deadline import deadline_of
from repro.shard.space import RING_KEY


class ShardRouterLayer(ClientLayer):
    """Key -> shard -> owner resolution with chase-on-stale retry."""

    name = "shard"

    #: The channel-level lease cache must not key entries by the bound
    #: ref — this layer swaps it per key.  The channel skips caching on
    #: routed channels and the router consults the cache itself below,
    #: against the *resolved* shard ref (shard interface ids are stable
    #: across moves, so entries stay addressable — and drain-on-move
    #: flushes them before ownership actually changes).
    routes_by_key = True

    def __init__(self, space, max_chases: int = 4) -> None:
        self.space = space
        self.max_chases = max_chases
        self.channel = None
        #: The cached routing snapshot; refreshed only on failure
        #: signals, so a router can serve forever off one view while
        #: ownership is stable.
        self.view = space.view()
        self.routed = 0
        self.chases = 0
        self.refreshes = 0

    def attach(self, channel) -> None:
        self.channel = channel
        self.space.routers.append(self)

    def request(self, invocation: Invocation, next_layer) -> Termination:
        if not invocation.args:
            raise BindingError(
                f"sharded operation {invocation.operation!r} needs its "
                f"routing key as the first argument")
        index = self.space.shard_of(str(invocation.args[0]))
        lease = self.channel.client_nucleus.lease_client
        if lease is not None and \
                invocation.kind == InvocationKind.INTERROGATION:
            ref = self.view.refs.get(index)
            if ref is not None:
                cached = lease.lookup(ref, invocation.operation,
                                      invocation.args)
                if cached is not None:
                    return cached
        nucleus = self.channel.client_nucleus
        budgets = nucleus.retry_budgets
        chases = 0
        while True:
            pointed = self._point(invocation, index)
            if chases == 0:
                budgets.note_first(pointed.primary_path().node, "shard")
            try:
                termination = next_layer(invocation)
            except WrongShardError:
                # The fence rejected before dispatch, so a re-route is
                # always safe — but only within the propagated deadline
                # and the path's retry budget.  Budget exhaustion must
                # *not* refresh the view or re-route: a chase storm is
                # exactly the amplification the budget exists to cap.
                chases += 1
                if chases > self.max_chases:
                    raise
                deadline_at = deadline_of(invocation.context.extra)
                if deadline_at is not None and \
                        nucleus.network.scheduler.now > deadline_at:
                    raise InvocationExpiredError(
                        f"shard chase for {invocation.operation!r}: "
                        f"propagated deadline passed")
                if not budgets.try_spend(
                        pointed.primary_path().node, "shard"):
                    raise RetryBudgetExhaustedError(
                        f"shard chase for {invocation.operation!r}: "
                        f"retry budget exhausted")
                self.chases += 1
                self._refresh()
                continue
            if self.channel.ref is not pointed:
                # The relocation layer below chased a forwarding stub
                # and rebound mid-call: adopt the newer placement so
                # the next invocation routes straight, not via the stub.
                self._refresh()
            if lease is not None and termination is not None and \
                    invocation.kind == InvocationKind.INTERROGATION:
                lease.store(self.channel.ref, invocation.operation,
                            invocation.args, termination)
            return termination

    def _point(self, invocation: Invocation, index: int):
        """Aim the channel at the shard's owner under the cached view."""
        ref = self.view.refs.get(index)
        if ref is None:
            self._refresh()
            ref = self.view.refs[index]
        # Swap the reference directly; the transport identity-checks the
        # ref on every call, so its path memo can never go stale.  (The
        # codec plan cache keys by interface id + epoch — no flush
        # needed per route, unlike a full rebind.)
        self.channel.ref = ref
        invocation.interface_id = ref.interface_id
        invocation.epoch = ref.epoch
        invocation.context.extra[RING_KEY] = self.view.epoch
        self.routed += 1
        return ref

    def _refresh(self) -> None:
        self.view = self.space.view()
        self.refreshes += 1
