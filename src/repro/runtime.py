"""The world builder: one-stop construction of an ODP system.

A :class:`World` wires together the simulation substrate (clock, scheduler,
network, faults), the federation of domains, and convenience accessors, so
examples and tests read like deployment descriptions::

    world = World(seed=7)
    org = world.domain("org")
    world.node("org", "n1")
    servers = world.capsule("n1", "servers")
    ref = servers.export(BankAccount(100))
    proxy = world.binder_for(world.capsule("n1", "clients")).bind(ref)
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.engine.binder import Binder
from repro.engine.capsule import Capsule
from repro.engine.nucleus import Nucleus
from repro.federation.domain import Domain, Federation
from repro.net.fault import FaultPlan
from repro.net.latency import LatencyModel
from repro.net.network import Network
from repro.sim.activity import ActivityRuntime
from repro.sim.rand import DeterministicRandom
from repro.sim.scheduler import Scheduler


class World:
    """A complete simulated ODP deployment."""

    def __init__(self, seed: int = 0,
                 latency: Optional[LatencyModel] = None,
                 drop_probability: float = 0.0,
                 processing_ms: float = 0.05) -> None:
        self.seed = seed
        self.scheduler = Scheduler()
        self.rng = DeterministicRandom(seed)
        self._fork_labels = {"network"}
        self.faults = FaultPlan(drop_probability)
        self.network = Network(
            self.scheduler,
            latency=latency if latency is not None else LatencyModel(),
            faults=self.faults,
            rng=self.rng.fork("network"))
        self.federation = Federation(self.scheduler, self.network)
        self.activities = ActivityRuntime(self.scheduler)
        self.processing_ms = processing_ms
        self._capsules: Dict[str, Capsule] = {}
        self._streams = None

    @property
    def streams(self):
        """The stream manager (created on first use)."""
        if self._streams is None:
            from repro.streams.binding import StreamManager
            self._streams = StreamManager(self.network, self.scheduler)
        return self._streams

    # -- randomness ---------------------------------------------------------

    def fork_rng(self, label: str) -> DeterministicRandom:
        """Fork an independent random stream from the world seed.

        Every consumer of randomness layered on top of a world (workload
        generators, chaos explorers) must take its own labelled fork so
        its draws cannot perturb the platform's streams.  Duplicate
        labels are rejected: two call sites silently sharing one label
        would receive *identical* streams — correlated randomness that
        masquerades as independence.
        """
        if label in self._fork_labels:
            raise ValueError(
                f"rng stream {label!r} already forked from this world; "
                f"independent consumers need distinct labels")
        self._fork_labels.add(label)
        return self.rng.fork(label)

    # -- time ---------------------------------------------------------------

    @property
    def clock(self):
        return self.scheduler.clock

    @property
    def now(self) -> float:
        return self.scheduler.now

    def settle(self, max_events: int = 1_000_000) -> int:
        """Drain all pending asynchronous activity (announcements,
        heartbeats, stream frames...)."""
        return self.scheduler.run_until_idle(max_events=max_events)

    # -- topology ---------------------------------------------------------------

    def domain(self, name: str) -> Domain:
        if name in self.federation.domains:
            return self.federation.domains[name]
        return self.federation.create_domain(name)

    def node(self, domain_name: str, address: str,
             native_format: str = "packed") -> Nucleus:
        return self.domain(domain_name).add_node(
            address, native_format, processing_ms=self.processing_ms)

    def nucleus(self, address: str) -> Nucleus:
        domain_name = self.federation.domain_of_node(address)
        if domain_name is None:
            raise KeyError(f"node {address!r} belongs to no domain")
        return self.federation.domain(domain_name).nuclei[address]

    def capsule(self, node_address: str, name: str) -> Capsule:
        """Create (or fetch) a capsule on a node."""
        key = f"{node_address}/{name}"
        if key in self._capsules:
            return self._capsules[key]
        nucleus = self.nucleus(node_address)
        if name in nucleus.capsules:
            capsule = nucleus.capsules[name]
        else:
            capsule = nucleus.create_capsule(name)
        self._capsules[key] = capsule
        return capsule

    def binder_for(self, capsule: Capsule) -> Binder:
        return Binder(capsule.nucleus, capsule)

    def link_domains(self, a: str, b: str, **contract):
        """Federate two domains (bidirectional by default)."""
        return self.federation.link(a, b, **contract)

    # -- failure scripting ----------------------------------------------------------

    def apply_chaos(self, schedule) -> None:
        """Drive the fault plan from a declarative chaos schedule.

        Window transitions fire as the virtual clock passes them — a
        :class:`~repro.net.fault.FaultSchedule` declares the whole
        failure scenario as data instead of imperative toggles.
        """
        self.faults.attach_schedule(schedule, self.scheduler.clock)

    def crash_node(self, address: str) -> None:
        self.faults.crash_node(address)

    def restart_node(self, address: str) -> None:
        self.faults.restart_node(address)

    def partition(self, *groups) -> None:
        self.faults.partition(*groups)

    def asym_partition(self, sources, destinations) -> None:
        self.faults.asym_partition(sources, destinations)

    def heal_partition(self, node=None) -> None:
        self.faults.heal_partition(node)

    # -- reporting --------------------------------------------------------------

    def traffic(self) -> Dict[str, int]:
        return {
            "messages": self.network.total_messages,
            "bytes": self.network.total_bytes,
            "drops": self.faults.drops,
        }
