"""Serialising interface signatures.

Interface references travel with their full signature so that type checks
happen at bind time on the client (no extra round trip) and traders can
match structurally (section 6).  This module converts signatures and type
terms to/from the plain-object model understood by every wire format.
"""

from __future__ import annotations

from typing import Any, Dict
from weakref import WeakKeyDictionary

from repro.errors import MarshalError
from repro.types.signature import (
    InterfaceSignature,
    OperationSig,
    TerminationSig,
)
from repro.types.terms import (
    ANY,
    BOOL,
    BYTES,
    FLOAT,
    INT,
    RecordType,
    RefType,
    SeqType,
    STR,
    TypeTerm,
    VOID,
)

_PRIM_BY_LABEL = {t.label: t for t in (ANY, VOID, BOOL, INT, FLOAT, STR,
                                       BYTES)}


def term_to_obj(term: TypeTerm) -> Any:
    if term.label in _PRIM_BY_LABEL:
        return term.label
    if isinstance(term, SeqType):
        return {"seq": term_to_obj(term.element)}
    if isinstance(term, RecordType):
        return {"rec": {name: term_to_obj(t) for name, t in term.fields}}
    if isinstance(term, RefType):
        return {"ref": signature_to_obj(term.signature)}
    raise MarshalError(f"cannot serialise type term {term!r}")


def term_from_obj(obj: Any) -> TypeTerm:
    if isinstance(obj, str):
        try:
            return _PRIM_BY_LABEL[obj]
        except KeyError:
            raise MarshalError(f"unknown primitive label {obj!r}") from None
    if isinstance(obj, dict):
        if "seq" in obj:
            return SeqType(term_from_obj(obj["seq"]))
        if "rec" in obj:
            return RecordType({name: term_from_obj(t)
                               for name, t in obj["rec"].items()})
        if "ref" in obj:
            return RefType(signature_from_obj(obj["ref"]))
    raise MarshalError(f"malformed type term object {obj!r}")


#: Memoised plain-object forms, keyed weakly by the signature instance.
#: Signatures are immutable after construction and every exported ref of
#: one interface shares the same instance, so serialising the (deeply
#: recursive) signature tree once per interface instead of once per
#: marshalled reference is pure saving.  Entries die with the signature.
#: Callers must treat the returned tree as read-only, which every wire
#: format does (dumps never mutates its input).
_SIG_OBJ_CACHE: "WeakKeyDictionary[InterfaceSignature, Dict[str, Any]]" = \
    WeakKeyDictionary()


def signature_to_obj(signature: InterfaceSignature) -> Dict[str, Any]:
    try:
        cached = _SIG_OBJ_CACHE.get(signature)
    except TypeError:  # unhashable/exotic signature stand-in: no memo
        cached = None
    if cached is not None:
        return cached
    obj = _signature_to_obj(signature)
    try:
        _SIG_OBJ_CACHE[signature] = obj
    except TypeError:
        pass
    return obj


def _signature_to_obj(signature: InterfaceSignature) -> Dict[str, Any]:
    return {
        "name": signature.name,
        "kind": signature.kind,
        "ops": [
            {
                "name": op.name,
                "announcement": op.announcement,
                "readonly": op.readonly,
                "params": [term_to_obj(p) for p in op.params],
                "terms": [
                    {"name": t.name,
                     "results": [term_to_obj(r) for r in t.results]}
                    for t in op.terminations
                ],
            }
            for _, op in sorted(signature.operations.items())
        ],
    }


def signature_from_obj(obj: Dict[str, Any]) -> InterfaceSignature:
    try:
        operations = []
        for op in obj["ops"]:
            terminations = [
                TerminationSig(t["name"],
                               [term_from_obj(r) for r in t["results"]])
                for t in op["terms"]
            ]
            operations.append(OperationSig(
                op["name"],
                [term_from_obj(p) for p in op["params"]],
                terminations,
                announcement=op["announcement"],
                readonly=op.get("readonly", False),
            ))
        return InterfaceSignature(obj["name"], operations, kind=obj["kind"])
    except (KeyError, TypeError) as exc:
        raise MarshalError(f"malformed signature object: {exc}") from exc
