"""The marshaller: ADT values <-> plain-object trees.

This is where the computational rule "all arguments and results are passed
by copying references to ADT interfaces" (section 4.4) meets the engineering
optimisation "objects which have constant state can be copied ... in place
of interface references" (section 4.5):

* immutable values (primitives, tuples, frozen records) are copied,
* :class:`~repro.comp.reference.InterfaceRef` values are passed by
  reference (their identity, paths, epoch, context and full signature are
  serialised),
* mutable application objects are *implicitly exported*: the marshaller
  calls back into the capsule to obtain a reference, so sharing semantics
  are preserved exactly as the computational model demands.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.comp.outcomes import Termination
from repro.comp.reference import AccessPath, InterfaceRef
from repro.errors import MarshalError
from repro.ndr.sigcodec import signature_from_obj, signature_to_obj
from repro.util.freeze import FrozenRecord

#: Marker key used for non-plain values in the object tree.
KIND = "__kind__"

Exporter = Callable[[Any], InterfaceRef]


class Marshaller:
    """Converts between application values and wire-ready object trees.

    ``exporter`` is the capsule hook used to pass mutable objects by
    reference; when absent, attempting to marshal a mutable object is an
    error (the strict computational-model behaviour).
    """

    def __init__(self, exporter: Optional[Exporter] = None) -> None:
        self.exporter = exporter
        self.refs_exported = 0
        self.values_copied = 0

    # -- marshalling --------------------------------------------------------

    def marshal(self, value: Any) -> Any:
        if value is None or isinstance(value, (bool, int, float, str,
                                               bytes)):
            self.values_copied += 1
            return value
        if isinstance(value, InterfaceRef):
            return self._marshal_ref(value)
        if isinstance(value, Termination):
            return {
                KIND: "term",
                "name": value.name,
                "values": [self.marshal(v) for v in value.values],
            }
        if isinstance(value, (list, tuple)):
            return [self.marshal(v) for v in value]
        if isinstance(value, FrozenRecord):
            self.values_copied += 1
            return {
                KIND: "record",
                "fields": {k: self.marshal(v) for k, v in value.items()},
            }
        if isinstance(value, dict):
            return {
                KIND: "record",
                "fields": {self._str_key(k): self.marshal(v)
                           for k, v in value.items()},
            }
        if isinstance(value, (set, frozenset)):
            return {
                KIND: "set",
                "items": sorted((self.marshal(v) for v in value),
                                key=repr),
            }
        # A mutable application object: pass by reference via the exporter.
        if self.exporter is not None:
            ref = self.exporter(value)
            self.refs_exported += 1
            return self._marshal_ref(ref)
        raise MarshalError(
            f"cannot marshal mutable {type(value).__name__} without an "
            f"exporter: ADT values cross interfaces by reference")

    @staticmethod
    def _str_key(key: Any) -> str:
        if not isinstance(key, str):
            raise MarshalError("record field names must be strings")
        return key

    def _marshal_ref(self, ref: InterfaceRef) -> Dict[str, Any]:
        return {
            KIND: "ref",
            "id": ref.interface_id,
            "epoch": ref.epoch,
            "group": ref.group,
            "context": list(ref.context),
            "paths": [
                {"node": p.node, "capsule": p.capsule,
                 "protocol": p.protocol, "wire_format": p.wire_format}
                for p in ref.paths
            ],
            "signature": signature_to_obj(ref.signature),
        }

    # -- unmarshalling -------------------------------------------------------

    def unmarshal(self, obj: Any) -> Any:
        if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
            return obj
        if isinstance(obj, list):
            return tuple(self.unmarshal(item) for item in obj)
        if isinstance(obj, dict):
            kind = obj.get(KIND)
            if kind == "ref":
                return self._unmarshal_ref(obj)
            if kind == "term":
                return Termination(
                    obj["name"],
                    tuple(self.unmarshal(v) for v in obj["values"]))
            if kind == "record":
                return FrozenRecord({k: self.unmarshal(v)
                                     for k, v in obj["fields"].items()})
            if kind == "set":
                return frozenset(self.unmarshal(v) for v in obj["items"])
            raise MarshalError(f"unknown wire object kind {kind!r}")
        raise MarshalError(
            f"unexpected wire object of type {type(obj).__name__}")

    def _unmarshal_ref(self, obj: Dict[str, Any]) -> InterfaceRef:
        try:
            paths = tuple(
                AccessPath(p["node"], p["capsule"], p["protocol"],
                           p["wire_format"])
                for p in obj["paths"])
            return InterfaceRef(
                obj["id"],
                signature_from_obj(obj["signature"]),
                paths,
                epoch=obj["epoch"],
                context=tuple(obj["context"]),
                group=obj.get("group", False),
            )
        except (KeyError, TypeError) as exc:
            raise MarshalError(f"malformed reference object: {exc}") from exc

    # -- batches -------------------------------------------------------------

    def marshal_args(self, args) -> List[Any]:
        return [self.marshal(a) for a in args]

    def unmarshal_args(self, objs) -> tuple:
        return tuple(self.unmarshal(o) for o in objs)
