"""Codec plan caching: memoised marshalling plans for hot invocations.

The generic encoder (``WireFormat.dumps``) walks the envelope dict on
every invocation: sort the keys, dispatch on the type of every value,
re-encode the interface id, operation name, epoch and framing bytes that
have not changed since the last call on the same channel.  On the hot
path that walk dominates marshalling cost.

An :class:`InvocationPlan` freezes the constant parts of one
(wire format, capsule, interface, operation, kind, epoch) combination
into pre-encoded byte chunks, leaving *holes* for the three values that
genuinely vary per call — the marshalled argument list, the invocation
context, and the invocation id.  Encoding then interleaves the cached
chunks with three ``_write`` calls instead of re-walking the whole
envelope.

Format subtlety: PACKED containers carry only an entry *count*, so
constant chunks splice byte-for-byte.  TAGGED containers length-prefix
their body (``map[n]#bodylen#``), so the plan assembles the body from
the same chunks and recomputes the header — structural caching rather
than blind splicing.  Either way the output is byte-identical to the
generic walk; ``tests/test_ndr_golden.py`` pins that equivalence so the
cache can never silently drift the wire format.

Invalidation: plans embed the reference's identity and epoch, so a
channel drops its cache whenever the reference changes —
:meth:`~repro.engine.channel.Channel.rebind` (relocation repair,
federation re-translation) calls :meth:`PlanCache.invalidate`.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Optional, Tuple

from repro.ndr.formats import (_PACK_U, PackedFormat, WireFormat,
                               _packed_write, _tagged_write)


def _chunk(fmt: WireFormat, *objs: Any) -> bytes:
    """Encode constant values with the format's own writer."""
    out: List[bytes] = []
    for obj in objs:
        fmt._write(obj, out)
    return b"".join(out)


#: Context dict keys in the sorted order the wire formats emit them
#: (``trace`` slots between ``principal`` and ``transaction_id`` when
#: present).  ``InvocationPlan.encode_request`` writes the context
#: straight from the ``InvocationContext`` fields in this order — no
#: intermediate dict, no copy, no per-call key sort.
_CTX_KEYS = ("credentials", "extra", "origin_domain", "principal",
             "trace", "transaction_id", "via_domains")


class InvocationPlan:
    """Frozen encoding plan for one invocation shape on one path.

    ``encode_member`` produces the bytes of the ``inv`` dict alone (a
    *member*), which is the unit both envelope shapes are assembled
    from: ``encode_single`` wraps one member into the classic
    ``{"capsule", "inv"}`` request, :func:`encode_batch` wraps many into
    a ``{"batch", "capsule"}`` multi-invocation message.
    """

    __slots__ = ("fmt", "packed", "entries", "pre_args", "pre_ctx",
                 "pre_inv_id", "tail", "has_inv_id", "_packed_header",
                 "_single_prefix", "_capsule_kv", "_inv_key",
                 "_req_head", "_mem_head", "_ctx_seg6", "_ctx_seg7",
                 "_k_cred", "_k_extra", "_k_origin", "_k_principal",
                 "_k_trace", "_k_tx", "_k_via", "_tagged_mid")

    def __init__(self, fmt: WireFormat, capsule: str, interface_id: str,
                 operation: str, kind: str, epoch: int,
                 has_inv_id: bool) -> None:
        self.fmt = fmt
        self.packed = isinstance(fmt, PackedFormat)
        self.has_inv_id = has_inv_id
        # Sorted key order inside the inv dict is fixed by the formats:
        # args < ctx < epoch < id < inv_id < kind < op.
        self.entries = 7 if has_inv_id else 6
        self.pre_args = _chunk(fmt, "args")
        self.pre_ctx = _chunk(fmt, "ctx")
        mid = _chunk(fmt, "epoch", epoch, "id", interface_id)
        if has_inv_id:
            self.pre_inv_id = mid + _chunk(fmt, "inv_id")
        else:
            self.pre_inv_id = mid
        self.tail = _chunk(fmt, "kind", kind, "op", operation)
        self._packed_header = (
            b"d" + struct.pack(">I", self.entries) if self.packed else b"")
        self._capsule_kv = _chunk(fmt, "capsule", capsule)
        self._inv_key = _chunk(fmt, "inv")
        if self.packed:
            self._single_prefix = (fmt._MAGIC + b"d\x00\x00\x00\x02"
                                   + self._capsule_kv + self._inv_key)
        else:
            self._single_prefix = b""
        (self._k_cred, self._k_extra, self._k_origin, self._k_principal,
         self._k_trace, self._k_tx, self._k_via) = (
            _chunk(fmt, key) for key in _CTX_KEYS)
        # Constant byte runs between the variable holes, merged into
        # single precomputed segments so the hot path appends a handful
        # of slices instead of re-joining chunk after chunk per call.
        if self.packed:
            self._req_head = (self._single_prefix + self._packed_header
                              + self.pre_args)
            self._mem_head = self._packed_header + self.pre_args
            self._ctx_seg7 = (self.pre_ctx + b"d" + _PACK_U(7)
                              + self._k_cred)
            self._ctx_seg6 = (self.pre_ctx + b"d" + _PACK_U(6)
                              + self._k_cred)
            self._tagged_mid = b""
        else:
            self._req_head = self._mem_head = b""
            self._ctx_seg6 = self._ctx_seg7 = b""
            self._tagged_mid = self._capsule_kv + self._inv_key

    def encode_member(self, args_obj: List[Any], ctx_obj: Dict[str, Any],
                      inv_id: Optional[str]) -> bytes:
        """The ``inv`` dict bytes: cached chunks + three variable holes."""
        fmt = self.fmt
        out: List[bytes] = [self.pre_args]
        fmt._write(args_obj, out)
        out.append(self.pre_ctx)
        fmt._write(ctx_obj, out)
        out.append(self.pre_inv_id)
        if self.has_inv_id:
            fmt._write(inv_id, out)
        out.append(self.tail)
        body = b"".join(out)
        if self.packed:
            return self._packed_header + body
        return f"map[{self.entries}]#{len(body)}#".encode("ascii") + body

    def encode_single(self, member: bytes) -> bytes:
        """Wrap one member into a complete request envelope."""
        if self.packed:
            return self._single_prefix + member
        body = self._capsule_kv + self._inv_key + member
        return (self.fmt._MAGIC
                + f"map[2]#{len(body)}#".encode("ascii") + body)

    # -- zero-copy assembly --------------------------------------------------
    #
    # The context is written straight from ``InvocationContext`` fields
    # in pinned sorted-key order — byte-identical to encoding the dict
    # ``Nucleus.encode_context`` would have built, without building it
    # (no dict copies, no per-call key sort).  String-typed fields are
    # framed inline; anything else falls through to the format writer.

    def _packed_body(self, buf: bytearray, args_obj: List[Any],
                     context: Any, inv_id: Optional[str]) -> None:
        """Everything after ``_req_head``/``_mem_head`` for PACKED."""
        fmt = self.fmt
        if type(args_obj) is list:
            # Args are a list on every real call path; write the
            # container header inline and dispatch only per item.
            buf += b"l"
            buf += _PACK_U(len(args_obj))
            for item in args_obj:
                if type(item) is str:
                    raw = item.encode("utf-8")
                    buf += b"s"
                    buf += _PACK_U(len(raw))
                    buf += raw
                else:
                    _packed_write(item, buf, fmt)
        else:
            _packed_write(args_obj, buf, fmt)
        trace = context.trace
        wire_trace = None
        if trace is not None and trace.sampled and trace.trace_id:
            wire_trace = trace.to_wire()
            buf += self._ctx_seg7
        else:
            buf += self._ctx_seg6
        _packed_write(context.credentials, buf, fmt)
        buf += self._k_extra
        _packed_write(context.extra, buf, fmt)
        buf += self._k_origin
        value = context.origin_domain
        if type(value) is str:
            raw = value.encode("utf-8")
            buf += b"s"
            buf += _PACK_U(len(raw))
            buf += raw
        else:
            _packed_write(value, buf, fmt)
        buf += self._k_principal
        value = context.principal
        if type(value) is str:
            raw = value.encode("utf-8")
            buf += b"s"
            buf += _PACK_U(len(raw))
            buf += raw
        else:
            _packed_write(value, buf, fmt)
        if wire_trace is not None:
            buf += self._k_trace
            raw = wire_trace.encode("utf-8")
            buf += b"s"
            buf += _PACK_U(len(raw))
            buf += raw
        buf += self._k_tx
        value = context.transaction_id
        if type(value) is str:
            raw = value.encode("utf-8")
            buf += b"s"
            buf += _PACK_U(len(raw))
            buf += raw
        elif value is None:
            buf += b"N"
        else:
            _packed_write(value, buf, fmt)
        buf += self._k_via
        _packed_write(context.via_domains, buf, fmt)
        buf += self.pre_inv_id
        if self.has_inv_id:
            raw = inv_id.encode("utf-8")
            buf += b"s"
            buf += _PACK_U(len(raw))
            buf += raw
        buf += self.tail

    def _tagged_body(self, buf: bytearray, args_obj: List[Any],
                     context: Any, inv_id: Optional[str]) -> None:
        """The inv-dict body for TAGGED (headers spliced by callers)."""
        fmt = self.fmt
        buf += self.pre_args
        _tagged_write(args_obj, buf, fmt)
        buf += self.pre_ctx
        trace = context.trace
        wire_trace = None
        if trace is not None and trace.sampled and trace.trace_id:
            wire_trace = trace.to_wire()
        start = len(buf)
        buf += self._k_cred
        _tagged_write(context.credentials, buf, fmt)
        buf += self._k_extra
        _tagged_write(context.extra, buf, fmt)
        buf += self._k_origin
        value = context.origin_domain
        if type(value) is str:
            raw = value.encode("utf-8")
            buf += b"text#%d#" % len(raw)
            buf += raw
        else:
            _tagged_write(value, buf, fmt)
        buf += self._k_principal
        value = context.principal
        if type(value) is str:
            raw = value.encode("utf-8")
            buf += b"text#%d#" % len(raw)
            buf += raw
        else:
            _tagged_write(value, buf, fmt)
        if wire_trace is not None:
            buf += self._k_trace
            raw = wire_trace.encode("utf-8")
            buf += b"text#%d#" % len(raw)
            buf += raw
        buf += self._k_tx
        _tagged_write(context.transaction_id, buf, fmt)
        buf += self._k_via
        _tagged_write(context.via_domains, buf, fmt)
        buf[start:start] = b"map[%d]#%d#" % (
            7 if wire_trace is not None else 6, len(buf) - start)
        buf += self.pre_inv_id
        if self.has_inv_id:
            raw = inv_id.encode("utf-8")
            buf += b"text#%d#" % len(raw)
            buf += raw
        buf += self.tail

    def encode_request(self, args_obj: List[Any], context: Any,
                       inv_id: Optional[str]) -> bytes:
        """One-buffer single-request assembly: cached chunks spliced
        around the three variable holes, with the context written
        directly from its fields.  Byte-identical to
        ``encode_single(encode_member(...))`` over
        ``Nucleus.encode_context``'s dict — the golden tests pin it."""
        if self.packed:
            buf = bytearray(self._req_head)
            self._packed_body(buf, args_obj, context, inv_id)
            return bytes(buf)
        buf = bytearray()
        self._tagged_body(buf, args_obj, context, inv_id)
        buf[0:0] = (self._tagged_mid
                    + b"map[%d]#%d#" % (self.entries, len(buf)))
        return self.fmt._MAGIC + b"map[2]#%d#" % len(buf) + buf

    def encode_member_zero(self, args_obj: List[Any], context: Any,
                           inv_id: Optional[str]) -> bytes:
        """Zero-copy member bytes (batch building block) — the same
        output as ``encode_member`` fed ``Nucleus.encode_context``."""
        if self.packed:
            buf = bytearray(self._mem_head)
            self._packed_body(buf, args_obj, context, inv_id)
            return bytes(buf)
        buf = bytearray()
        self._tagged_body(buf, args_obj, context, inv_id)
        buf[0:0] = b"map[%d]#%d#" % (self.entries, len(buf))
        return bytes(buf)


def encode_batch(fmt: WireFormat, capsule: str,
                 members: List[bytes]) -> bytes:
    """Wrap member bytes into a ``{"batch": [...], "capsule": ...}``
    multi-invocation envelope (sorted key order: batch < capsule)."""
    joined = b"".join(members)
    if isinstance(fmt, PackedFormat):
        return (fmt._MAGIC + b"d\x00\x00\x00\x02"
                + _chunk(fmt, "batch")
                + b"l" + struct.pack(">I", len(members)) + joined
                + _chunk(fmt, "capsule", capsule))
    body = (_chunk(fmt, "batch")
            + f"list[{len(members)}]#{len(joined)}#".encode("ascii")
            + joined
            + _chunk(fmt, "capsule", capsule))
    return fmt._MAGIC + f"map[2]#{len(body)}#".encode("ascii") + body


#: Process-wide plan intern table.  An :class:`InvocationPlan` is a pure
#: value of its key — immutable once built — so identical shapes are
#: shared across channels *and* across worlds (the check harness builds
#: a fresh world per seed; without interning every seed re-derives the
#: same few dozen plans).  Per-cache hit/miss counters and invalidation
#: stay per-:class:`PlanCache`; interning only removes the rebuild cost.
_INTERNED: Dict[Tuple, InvocationPlan] = {}


class PlanCache:
    """Per-channel (or per-batcher) store of invocation plans."""

    #: Default for caches constructed without an explicit ``enabled``;
    #: benchmarks flip this to measure the legacy (plan-free) stack.
    default_enabled = True

    def __init__(self, enabled: Optional[bool] = None) -> None:
        self.enabled = (PlanCache.default_enabled if enabled is None
                        else enabled)
        self._plans: Dict[Tuple, InvocationPlan] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def plan_for(self, fmt: WireFormat, capsule: str, interface_id: str,
                 operation: str, kind: str, epoch: int,
                 has_inv_id: bool) -> InvocationPlan:
        key = (fmt.name, capsule, interface_id, operation, kind, epoch,
               has_inv_id)
        plan = self._plans.get(key)
        if plan is None:
            self.misses += 1
            plan = _INTERNED.get(key)
            if plan is None:
                plan = InvocationPlan(fmt, capsule, interface_id,
                                      operation, kind, epoch, has_inv_id)
                _INTERNED[key] = plan
            self._plans[key] = plan
        else:
            self.hits += 1
        return plan

    def invalidate(self, interface_id: Optional[str] = None) -> None:
        """Drop plans — all of them (rebind: the whole path may have
        changed) or those of one interface (federation translation)."""
        if interface_id is None:
            dropped = len(self._plans)
            self._plans.clear()
        else:
            stale = [key for key in self._plans if key[2] == interface_id]
            for key in stale:
                del self._plans[key]
            dropped = len(stale)
        self.invalidations += dropped

    def stats(self) -> Dict[str, int]:
        return {"plans": len(self._plans), "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations}

    def __len__(self) -> int:
        return len(self._plans)
