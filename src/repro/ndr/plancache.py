"""Codec plan caching: memoised marshalling plans for hot invocations.

The generic encoder (``WireFormat.dumps``) walks the envelope dict on
every invocation: sort the keys, dispatch on the type of every value,
re-encode the interface id, operation name, epoch and framing bytes that
have not changed since the last call on the same channel.  On the hot
path that walk dominates marshalling cost.

An :class:`InvocationPlan` freezes the constant parts of one
(wire format, capsule, interface, operation, kind, epoch) combination
into pre-encoded byte chunks, leaving *holes* for the three values that
genuinely vary per call — the marshalled argument list, the invocation
context, and the invocation id.  Encoding then interleaves the cached
chunks with three ``_write`` calls instead of re-walking the whole
envelope.

Format subtlety: PACKED containers carry only an entry *count*, so
constant chunks splice byte-for-byte.  TAGGED containers length-prefix
their body (``map[n]#bodylen#``), so the plan assembles the body from
the same chunks and recomputes the header — structural caching rather
than blind splicing.  Either way the output is byte-identical to the
generic walk; ``tests/test_ndr_golden.py`` pins that equivalence so the
cache can never silently drift the wire format.

Invalidation: plans embed the reference's identity and epoch, so a
channel drops its cache whenever the reference changes —
:meth:`~repro.engine.channel.Channel.rebind` (relocation repair,
federation re-translation) calls :meth:`PlanCache.invalidate`.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Optional, Tuple

from repro.ndr.formats import PackedFormat, WireFormat


def _chunk(fmt: WireFormat, *objs: Any) -> bytes:
    """Encode constant values with the format's own writer."""
    out: List[bytes] = []
    for obj in objs:
        fmt._write(obj, out)
    return b"".join(out)


class InvocationPlan:
    """Frozen encoding plan for one invocation shape on one path.

    ``encode_member`` produces the bytes of the ``inv`` dict alone (a
    *member*), which is the unit both envelope shapes are assembled
    from: ``encode_single`` wraps one member into the classic
    ``{"capsule", "inv"}`` request, :func:`encode_batch` wraps many into
    a ``{"batch", "capsule"}`` multi-invocation message.
    """

    __slots__ = ("fmt", "packed", "entries", "pre_args", "pre_ctx",
                 "pre_inv_id", "tail", "has_inv_id", "_packed_header",
                 "_single_prefix", "_capsule_kv", "_inv_key")

    def __init__(self, fmt: WireFormat, capsule: str, interface_id: str,
                 operation: str, kind: str, epoch: int,
                 has_inv_id: bool) -> None:
        self.fmt = fmt
        self.packed = isinstance(fmt, PackedFormat)
        self.has_inv_id = has_inv_id
        # Sorted key order inside the inv dict is fixed by the formats:
        # args < ctx < epoch < id < inv_id < kind < op.
        self.entries = 7 if has_inv_id else 6
        self.pre_args = _chunk(fmt, "args")
        self.pre_ctx = _chunk(fmt, "ctx")
        mid = _chunk(fmt, "epoch", epoch, "id", interface_id)
        if has_inv_id:
            self.pre_inv_id = mid + _chunk(fmt, "inv_id")
        else:
            self.pre_inv_id = mid
        self.tail = _chunk(fmt, "kind", kind, "op", operation)
        self._packed_header = (
            b"d" + struct.pack(">I", self.entries) if self.packed else b"")
        self._capsule_kv = _chunk(fmt, "capsule", capsule)
        self._inv_key = _chunk(fmt, "inv")
        if self.packed:
            self._single_prefix = (fmt._MAGIC + b"d\x00\x00\x00\x02"
                                   + self._capsule_kv + self._inv_key)
        else:
            self._single_prefix = b""

    def encode_member(self, args_obj: List[Any], ctx_obj: Dict[str, Any],
                      inv_id: Optional[str]) -> bytes:
        """The ``inv`` dict bytes: cached chunks + three variable holes."""
        fmt = self.fmt
        out: List[bytes] = [self.pre_args]
        fmt._write(args_obj, out)
        out.append(self.pre_ctx)
        fmt._write(ctx_obj, out)
        out.append(self.pre_inv_id)
        if self.has_inv_id:
            fmt._write(inv_id, out)
        out.append(self.tail)
        body = b"".join(out)
        if self.packed:
            return self._packed_header + body
        return f"map[{self.entries}]#{len(body)}#".encode("ascii") + body

    def encode_single(self, member: bytes) -> bytes:
        """Wrap one member into a complete request envelope."""
        if self.packed:
            return self._single_prefix + member
        body = self._capsule_kv + self._inv_key + member
        return (self.fmt._MAGIC
                + f"map[2]#{len(body)}#".encode("ascii") + body)


def encode_batch(fmt: WireFormat, capsule: str,
                 members: List[bytes]) -> bytes:
    """Wrap member bytes into a ``{"batch": [...], "capsule": ...}``
    multi-invocation envelope (sorted key order: batch < capsule)."""
    joined = b"".join(members)
    if isinstance(fmt, PackedFormat):
        return (fmt._MAGIC + b"d\x00\x00\x00\x02"
                + _chunk(fmt, "batch")
                + b"l" + struct.pack(">I", len(members)) + joined
                + _chunk(fmt, "capsule", capsule))
    body = (_chunk(fmt, "batch")
            + f"list[{len(members)}]#{len(joined)}#".encode("ascii")
            + joined
            + _chunk(fmt, "capsule", capsule))
    return fmt._MAGIC + f"map[2]#{len(body)}#".encode("ascii") + body


class PlanCache:
    """Per-channel (or per-batcher) store of invocation plans."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._plans: Dict[Tuple, InvocationPlan] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def plan_for(self, fmt: WireFormat, capsule: str, interface_id: str,
                 operation: str, kind: str, epoch: int,
                 has_inv_id: bool) -> InvocationPlan:
        key = (fmt.name, capsule, interface_id, operation, kind, epoch,
               has_inv_id)
        plan = self._plans.get(key)
        if plan is None:
            self.misses += 1
            plan = InvocationPlan(fmt, capsule, interface_id, operation,
                                  kind, epoch, has_inv_id)
            self._plans[key] = plan
        else:
            self.hits += 1
        return plan

    def invalidate(self, interface_id: Optional[str] = None) -> None:
        """Drop plans — all of them (rebind: the whole path may have
        changed) or those of one interface (federation translation)."""
        if interface_id is None:
            dropped = len(self._plans)
            self._plans.clear()
        else:
            stale = [key for key in self._plans if key[2] == interface_id]
            for key in stale:
                del self._plans[key]
            dropped = len(stale)
        self.invalidations += dropped

    def stats(self) -> Dict[str, int]:
        return {"plans": len(self._plans), "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations}

    def __len__(self) -> int:
        return len(self._plans)
