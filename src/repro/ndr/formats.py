"""Wire formats.

A wire format turns a *plain object tree* — ``None``, ``bool``, ``int``,
``float``, ``str``, ``bytes``, ``list``, ``dict`` with string keys — into
bytes and back.  The two built-in formats are intentionally incompatible:

* ``packed`` — tag-byte binary with struct-packed scalars (a caricature of
  a compiled ANSAware/CDR representation),
* ``tagged`` — length-prefixed self-describing text (a caricature of an
  ASN.1-ish / textual representation).

Feeding bytes from one format to the other fails loudly, which is what the
federation interceptor tests rely on.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Tuple

from repro.errors import MarshalError


class WireFormat:
    """Abstract encoder/decoder over the plain-object model."""

    name = "abstract"

    def dumps(self, obj: Any) -> bytes:
        raise NotImplementedError

    def loads(self, data: bytes) -> Any:
        raise NotImplementedError

    def _check_key(self, key: Any) -> str:
        if not isinstance(key, str):
            raise MarshalError(f"dict keys must be str, got {type(key)}")
        return key


class PackedFormat(WireFormat):
    """Compact binary format: 1-byte tag + struct-packed payloads."""

    name = "packed"

    _MAGIC = b"\xa5P"

    def dumps(self, obj: Any) -> bytes:
        chunks: List[bytes] = [self._MAGIC]
        self._write(obj, chunks)
        return b"".join(chunks)

    def _write(self, obj: Any, out: List[bytes]) -> None:
        if obj is None:
            out.append(b"N")
        elif obj is True:
            out.append(b"T")
        elif obj is False:
            out.append(b"F")
        elif isinstance(obj, int):
            if -(2 ** 63) <= obj < 2 ** 63:
                out.append(b"i" + struct.pack(">q", obj))
            else:  # big integer fallback: sign + length + magnitude bytes
                raw = obj.to_bytes((obj.bit_length() + 8) // 8, "big",
                                   signed=True)
                out.append(b"I" + struct.pack(">I", len(raw)) + raw)
        elif isinstance(obj, float):
            out.append(b"f" + struct.pack(">d", obj))
        elif isinstance(obj, str):
            raw = obj.encode("utf-8")
            out.append(b"s" + struct.pack(">I", len(raw)) + raw)
        elif isinstance(obj, bytes):
            out.append(b"b" + struct.pack(">I", len(obj)) + obj)
        elif isinstance(obj, (list, tuple)):
            out.append(b"l" + struct.pack(">I", len(obj)))
            for item in obj:
                self._write(item, out)
        elif isinstance(obj, dict):
            out.append(b"d" + struct.pack(">I", len(obj)))
            for key in sorted(obj):
                self._check_key(key)
                self._write(key, out)
                self._write(obj[key], out)
        else:
            raise MarshalError(
                f"packed format cannot encode {type(obj).__name__}")

    def loads(self, data: bytes) -> Any:
        if not data.startswith(self._MAGIC):
            raise MarshalError(
                "not a packed-format message (wrong magic); the sender "
                "used an incompatible wire format")
        obj, offset = self._read(data, len(self._MAGIC))
        if offset != len(data):
            raise MarshalError("trailing bytes in packed message")
        return obj

    def _read(self, data: bytes, offset: int) -> Tuple[Any, int]:
        try:
            tag = data[offset:offset + 1]
            offset += 1
            if tag == b"N":
                return None, offset
            if tag == b"T":
                return True, offset
            if tag == b"F":
                return False, offset
            if tag == b"i":
                (value,) = struct.unpack_from(">q", data, offset)
                return value, offset + 8
            if tag == b"I":
                (length,) = struct.unpack_from(">I", data, offset)
                offset += 4
                raw = data[offset:offset + length]
                return int.from_bytes(raw, "big", signed=True), offset + length
            if tag == b"f":
                (value,) = struct.unpack_from(">d", data, offset)
                return value, offset + 8
            if tag == b"s":
                (length,) = struct.unpack_from(">I", data, offset)
                offset += 4
                raw = data[offset:offset + length]
                return raw.decode("utf-8"), offset + length
            if tag == b"b":
                (length,) = struct.unpack_from(">I", data, offset)
                offset += 4
                return bytes(data[offset:offset + length]), offset + length
            if tag == b"l":
                (count,) = struct.unpack_from(">I", data, offset)
                offset += 4
                items = []
                for _ in range(count):
                    item, offset = self._read(data, offset)
                    items.append(item)
                return items, offset
            if tag == b"d":
                (count,) = struct.unpack_from(">I", data, offset)
                offset += 4
                result: Dict[str, Any] = {}
                for _ in range(count):
                    key, offset = self._read(data, offset)
                    value, offset = self._read(data, offset)
                    result[key] = value
                return result, offset
            raise MarshalError(f"unknown packed tag {tag!r}")
        except struct.error as exc:
            raise MarshalError(f"truncated packed message: {exc}") from exc


class TaggedFormat(WireFormat):
    """Self-describing textual format: ``tag#len#payload`` framing.

    Strings and bytes are length-prefixed (no escaping needed); containers
    carry an element count and concatenate their children.
    """

    name = "tagged"

    _MAGIC = b"@TAGGED@"

    def dumps(self, obj: Any) -> bytes:
        chunks: List[bytes] = [self._MAGIC]
        self._write(obj, chunks)
        return b"".join(chunks)

    def _frame(self, tag: str, payload: bytes) -> bytes:
        return f"{tag}#{len(payload)}#".encode("ascii") + payload

    def _write(self, obj: Any, out: List[bytes]) -> None:
        if obj is None:
            out.append(self._frame("nil", b""))
        elif obj is True or obj is False:
            out.append(self._frame("bool", b"true" if obj else b"false"))
        elif isinstance(obj, int):
            out.append(self._frame("int", str(obj).encode("ascii")))
        elif isinstance(obj, float):
            out.append(self._frame("real", repr(obj).encode("ascii")))
        elif isinstance(obj, str):
            out.append(self._frame("text", obj.encode("utf-8")))
        elif isinstance(obj, bytes):
            out.append(self._frame("octets", obj))
        elif isinstance(obj, (list, tuple)):
            inner: List[bytes] = []
            for item in obj:
                self._write(item, inner)
            body = b"".join(inner)
            out.append(f"list[{len(obj)}]#{len(body)}#".encode("ascii")
                       + body)
        elif isinstance(obj, dict):
            inner = []
            for key in sorted(obj):
                self._check_key(key)
                self._write(key, inner)
                self._write(obj[key], inner)
            body = b"".join(inner)
            out.append(f"map[{len(obj)}]#{len(body)}#".encode("ascii")
                       + body)
        else:
            raise MarshalError(
                f"tagged format cannot encode {type(obj).__name__}")

    def loads(self, data: bytes) -> Any:
        if not data.startswith(self._MAGIC):
            raise MarshalError(
                "not a tagged-format message (wrong magic); the sender "
                "used an incompatible wire format")
        obj, offset = self._read(data, len(self._MAGIC))
        if offset != len(data):
            raise MarshalError("trailing bytes in tagged message")
        return obj

    def _read_header(self, data: bytes, offset: int):
        first = data.find(b"#", offset)
        if first < 0:
            raise MarshalError("truncated tagged header")
        second = data.find(b"#", first + 1)
        if second < 0:
            raise MarshalError("truncated tagged header")
        tag = data[offset:first].decode("ascii")
        length = int(data[first + 1:second])
        return tag, length, second + 1

    def _read(self, data: bytes, offset: int) -> Tuple[Any, int]:
        tag, length, offset = self._read_header(data, offset)
        payload = data[offset:offset + length]
        if len(payload) != length:
            raise MarshalError("truncated tagged payload")
        end = offset + length
        count = None
        if "[" in tag:
            base, _, rest = tag.partition("[")
            count = int(rest.rstrip("]"))
            tag = base
        if tag == "nil":
            return None, end
        if tag == "bool":
            return payload == b"true", end
        if tag == "int":
            return int(payload), end
        if tag == "real":
            return float(payload), end
        if tag == "text":
            return payload.decode("utf-8"), end
        if tag == "octets":
            return bytes(payload), end
        if tag == "list":
            items = []
            inner = offset
            for _ in range(count or 0):
                item, inner = self._read(data, inner)
                items.append(item)
            return items, end
        if tag == "map":
            result: Dict[str, Any] = {}
            inner = offset
            for _ in range(count or 0):
                key, inner = self._read(data, inner)
                value, inner = self._read(data, inner)
                result[key] = value
            return result, end
        raise MarshalError(f"unknown tagged tag {tag!r}")


_REGISTRY: Dict[str, WireFormat] = {}


def register_format(fmt: WireFormat) -> None:
    _REGISTRY[fmt.name] = fmt


def get_format(name: str) -> WireFormat:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise MarshalError(f"unknown wire format {name!r}") from None


def available_formats() -> List[str]:
    return sorted(_REGISTRY)


register_format(PackedFormat())
register_format(TaggedFormat())
