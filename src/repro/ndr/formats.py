"""Wire formats.

A wire format turns a *plain object tree* — ``None``, ``bool``, ``int``,
``float``, ``str``, ``bytes``, ``list``, ``dict`` with string keys — into
bytes and back.  The two built-in formats are intentionally incompatible:

* ``packed`` — tag-byte binary with struct-packed scalars (a caricature of
  a compiled ANSAware/CDR representation),
* ``tagged`` — length-prefixed self-describing text (a caricature of an
  ASN.1-ish / textual representation).

Feeding bytes from one format to the other fails loudly, which is what the
federation interceptor tests rely on.

Each format carries two codec implementations that must agree byte for
byte:

* the **reference walk** (``dumps_reference``/``loads_reference``) — the
  original recursive chunk-list encoder and tuple-threading decoder,
  kept as the executable specification of the wire format;
* the **zero-copy fast path** (the default behind ``dumps``/``loads``)
  — a single ``bytearray`` output buffer appended in place, exact-type
  dispatch, precompiled ``struct`` codes, and an allocation-free decode
  cursor (one mutable position object per message instead of a
  ``(value, offset)`` tuple per node).

``set_zero_copy(False)`` routes ``dumps``/``loads`` through the
reference walk globally — benchmarks use it to measure the legacy
stack; the golden and fuzz tests assert both paths emit identical
bytes.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Tuple

from repro.errors import MarshalError

#: When True (the default) ``dumps``/``loads`` take the zero-copy fast
#: path; when False they run the reference walk.  Flipped only by
#: benchmarks and equivalence tests.
_ZERO_COPY = True


def zero_copy_enabled() -> bool:
    return _ZERO_COPY


def set_zero_copy(enabled: bool) -> bool:
    """Toggle the fast path globally; returns the previous setting."""
    global _ZERO_COPY
    previous = _ZERO_COPY
    _ZERO_COPY = bool(enabled)
    return previous


class _Cursor:
    """A mutable decode position: one allocation per message."""

    __slots__ = ("pos",)

    def __init__(self, pos: int) -> None:
        self.pos = pos


class WireFormat:
    """Abstract encoder/decoder over the plain-object model."""

    name = "abstract"

    def dumps(self, obj: Any) -> bytes:
        raise NotImplementedError

    def loads(self, data: bytes) -> Any:
        raise NotImplementedError

    def _check_key(self, key: Any) -> str:
        if not isinstance(key, str):
            raise MarshalError(f"dict keys must be str, got {type(key)}")
        return key


# ---------------------------------------------------------------------------
# PACKED: 1-byte tag + struct-packed payloads
# ---------------------------------------------------------------------------

_PACK_Q = struct.Struct(">q").pack
_PACK_U = struct.Struct(">I").pack
_PACK_D = struct.Struct(">d").pack
_UNPACK_Q = struct.Struct(">q").unpack_from
_UNPACK_U = struct.Struct(">I").unpack_from
_UNPACK_D = struct.Struct(">d").unpack_from

_I64_MIN = -(2 ** 63)
_I64_MAX = 2 ** 63 - 1


def _packed_write(obj: Any, buf: bytearray, fmt: "PackedFormat") -> None:
    """Append *obj*'s packed encoding to *buf* — exact-type dispatch
    with container loops inlining the dominant scalar cases."""
    tp = type(obj)
    if tp is str:
        raw = obj.encode("utf-8")
        buf += b"s"
        buf += _PACK_U(len(raw))
        buf += raw
    elif tp is int:
        if _I64_MIN <= obj <= _I64_MAX:
            buf += b"i"
            buf += _PACK_Q(obj)
        else:
            raw = obj.to_bytes((obj.bit_length() + 8) // 8, "big",
                               signed=True)
            buf += b"I"
            buf += _PACK_U(len(raw))
            buf += raw
    elif obj is None:
        buf += b"N"
    elif obj is True:
        buf += b"T"
    elif obj is False:
        buf += b"F"
    elif tp is float:
        buf += b"f"
        buf += _PACK_D(obj)
    elif tp is dict:
        buf += b"d"
        buf += _PACK_U(len(obj))
        for key in sorted(obj):
            if type(key) is str:
                raw = key.encode("utf-8")
                buf += b"s"
                buf += _PACK_U(len(raw))
                buf += raw
            else:
                fmt._check_key(key)
                _packed_write(key, buf, fmt)
            value = obj[key]
            vt = type(value)
            if vt is str:
                raw = value.encode("utf-8")
                buf += b"s"
                buf += _PACK_U(len(raw))
                buf += raw
            elif vt is int and _I64_MIN <= value <= _I64_MAX:
                buf += b"i"
                buf += _PACK_Q(value)
            elif value is None:
                buf += b"N"
            elif vt is float:
                buf += b"f"
                buf += _PACK_D(value)
            else:
                _packed_write(value, buf, fmt)
    elif tp is list or tp is tuple:
        buf += b"l"
        buf += _PACK_U(len(obj))
        for item in obj:
            it = type(item)
            if it is str:
                raw = item.encode("utf-8")
                buf += b"s"
                buf += _PACK_U(len(raw))
                buf += raw
            elif it is int and _I64_MIN <= item <= _I64_MAX:
                buf += b"i"
                buf += _PACK_Q(item)
            elif item is None:
                buf += b"N"
            elif it is float:
                buf += b"f"
                buf += _PACK_D(item)
            else:
                _packed_write(item, buf, fmt)
    elif tp is bytes:
        buf += b"b"
        buf += _PACK_U(len(obj))
        buf += obj
    else:
        # Scalar/container subclasses and unencodable types: defer to
        # the reference walk so behaviour (and every error message)
        # stays identical.
        chunks: List[bytes] = []
        fmt._write(obj, chunks)
        buf += b"".join(chunks)


def _packed_read(data: bytes, cur: _Cursor) -> Any:
    """Decode one packed value at ``cur.pos``, advancing the cursor."""
    pos = cur.pos
    tag = data[pos]
    pos += 1
    if tag == 0x73:  # "s"
        (length,) = _UNPACK_U(data, pos)
        pos += 4
        end = pos + length
        cur.pos = end
        return data[pos:end].decode("utf-8")
    if tag == 0x69:  # "i"
        (value,) = _UNPACK_Q(data, pos)
        cur.pos = pos + 8
        return value
    if tag == 0x64:  # "d"
        (count,) = _UNPACK_U(data, pos)
        pos += 4
        result: Dict[str, Any] = {}
        for _ in range(count):
            # Keys are (almost) always strings: decode inline.
            t = data[pos]
            if t == 0x73:
                (length,) = _UNPACK_U(data, pos + 1)
                kp = pos + 5
                pos = kp + length
                key = data[kp:pos].decode("utf-8")
            else:
                cur.pos = pos
                key = _packed_read(data, cur)
                pos = cur.pos
            # Values: inline the dominant scalar cases, recurse for
            # containers and the rare tags.
            t = data[pos]
            if t == 0x73:
                (length,) = _UNPACK_U(data, pos + 1)
                vp = pos + 5
                pos = vp + length
                result[key] = data[vp:pos].decode("utf-8")
            elif t == 0x69:
                (value,) = _UNPACK_Q(data, pos + 1)
                pos += 9
                result[key] = value
            elif t == 0x4E:
                pos += 1
                result[key] = None
            else:
                cur.pos = pos
                result[key] = _packed_read(data, cur)
                pos = cur.pos
        cur.pos = pos
        return result
    if tag == 0x6C:  # "l"
        (count,) = _UNPACK_U(data, pos)
        pos += 4
        items = []
        append = items.append
        for _ in range(count):
            t = data[pos]
            if t == 0x73:
                (length,) = _UNPACK_U(data, pos + 1)
                vp = pos + 5
                pos = vp + length
                append(data[vp:pos].decode("utf-8"))
            elif t == 0x69:
                (value,) = _UNPACK_Q(data, pos + 1)
                pos += 9
                append(value)
            elif t == 0x4E:
                pos += 1
                append(None)
            elif t == 0x54:
                pos += 1
                append(True)
            elif t == 0x46:
                pos += 1
                append(False)
            elif t == 0x66:
                (value,) = _UNPACK_D(data, pos + 1)
                pos += 9
                append(value)
            else:
                cur.pos = pos
                append(_packed_read(data, cur))
                pos = cur.pos
        cur.pos = pos
        return items
    if tag == 0x4E:  # "N"
        cur.pos = pos
        return None
    if tag == 0x54:  # "T"
        cur.pos = pos
        return True
    if tag == 0x46:  # "F"
        cur.pos = pos
        return False
    if tag == 0x66:  # "f"
        (value,) = _UNPACK_D(data, pos)
        cur.pos = pos + 8
        return value
    if tag == 0x62:  # "b"
        (length,) = _UNPACK_U(data, pos)
        pos += 4
        end = pos + length
        cur.pos = end
        return bytes(data[pos:end])
    if tag == 0x49:  # "I"
        (length,) = _UNPACK_U(data, pos)
        pos += 4
        end = pos + length
        cur.pos = end
        return int.from_bytes(data[pos:end], "big", signed=True)
    raise MarshalError(f"unknown packed tag {bytes((tag,))!r}")


class PackedFormat(WireFormat):
    """Compact binary format: 1-byte tag + struct-packed payloads."""

    name = "packed"

    _MAGIC = b"\xa5P"

    def dumps(self, obj: Any) -> bytes:
        if not _ZERO_COPY:
            return self.dumps_reference(obj)
        buf = bytearray(self._MAGIC)
        _packed_write(obj, buf, self)
        return bytes(buf)

    def dumps_reference(self, obj: Any) -> bytes:
        """Encode via the original chunk-list walk (the format spec)."""
        chunks: List[bytes] = [self._MAGIC]
        self._write(obj, chunks)
        return b"".join(chunks)

    def _write(self, obj: Any, out: List[bytes]) -> None:
        if obj is None:
            out.append(b"N")
        elif obj is True:
            out.append(b"T")
        elif obj is False:
            out.append(b"F")
        elif isinstance(obj, int):
            if -(2 ** 63) <= obj < 2 ** 63:
                out.append(b"i" + struct.pack(">q", obj))
            else:  # big integer fallback: sign + length + magnitude bytes
                raw = obj.to_bytes((obj.bit_length() + 8) // 8, "big",
                                   signed=True)
                out.append(b"I" + struct.pack(">I", len(raw)) + raw)
        elif isinstance(obj, float):
            out.append(b"f" + struct.pack(">d", obj))
        elif isinstance(obj, str):
            raw = obj.encode("utf-8")
            out.append(b"s" + struct.pack(">I", len(raw)) + raw)
        elif isinstance(obj, bytes):
            out.append(b"b" + struct.pack(">I", len(obj)) + obj)
        elif isinstance(obj, (list, tuple)):
            out.append(b"l" + struct.pack(">I", len(obj)))
            for item in obj:
                self._write(item, out)
        elif isinstance(obj, dict):
            out.append(b"d" + struct.pack(">I", len(obj)))
            for key in sorted(obj):
                self._check_key(key)
                self._write(key, out)
                self._write(obj[key], out)
        else:
            raise MarshalError(
                f"packed format cannot encode {type(obj).__name__}")

    def loads(self, data: bytes) -> Any:
        if not _ZERO_COPY:
            return self.loads_reference(data)
        if not data.startswith(self._MAGIC):
            raise MarshalError(
                "not a packed-format message (wrong magic); the sender "
                "used an incompatible wire format")
        cur = _Cursor(len(self._MAGIC))
        try:
            obj = _packed_read(data, cur)
        except (struct.error, IndexError) as exc:
            raise MarshalError(f"truncated packed message: {exc}") from exc
        if cur.pos != len(data):
            raise MarshalError("trailing bytes in packed message")
        return obj

    def loads_reference(self, data: bytes) -> Any:
        """Decode via the original tuple-threading walk."""
        if not data.startswith(self._MAGIC):
            raise MarshalError(
                "not a packed-format message (wrong magic); the sender "
                "used an incompatible wire format")
        obj, offset = self._read(data, len(self._MAGIC))
        if offset != len(data):
            raise MarshalError("trailing bytes in packed message")
        return obj

    def _read(self, data: bytes, offset: int) -> Tuple[Any, int]:
        try:
            tag = data[offset:offset + 1]
            offset += 1
            if tag == b"N":
                return None, offset
            if tag == b"T":
                return True, offset
            if tag == b"F":
                return False, offset
            if tag == b"i":
                (value,) = struct.unpack_from(">q", data, offset)
                return value, offset + 8
            if tag == b"I":
                (length,) = struct.unpack_from(">I", data, offset)
                offset += 4
                raw = data[offset:offset + length]
                return int.from_bytes(raw, "big", signed=True), offset + length
            if tag == b"f":
                (value,) = struct.unpack_from(">d", data, offset)
                return value, offset + 8
            if tag == b"s":
                (length,) = struct.unpack_from(">I", data, offset)
                offset += 4
                raw = data[offset:offset + length]
                return raw.decode("utf-8"), offset + length
            if tag == b"b":
                (length,) = struct.unpack_from(">I", data, offset)
                offset += 4
                return bytes(data[offset:offset + length]), offset + length
            if tag == b"l":
                (count,) = struct.unpack_from(">I", data, offset)
                offset += 4
                items = []
                for _ in range(count):
                    item, offset = self._read(data, offset)
                    items.append(item)
                return items, offset
            if tag == b"d":
                (count,) = struct.unpack_from(">I", data, offset)
                offset += 4
                result: Dict[str, Any] = {}
                for _ in range(count):
                    key, offset = self._read(data, offset)
                    value, offset = self._read(data, offset)
                    result[key] = value
                return result, offset
            raise MarshalError(f"unknown packed tag {tag!r}")
        except struct.error as exc:
            raise MarshalError(f"truncated packed message: {exc}") from exc


# ---------------------------------------------------------------------------
# TAGGED: self-describing ``tag#len#payload`` framing
# ---------------------------------------------------------------------------

def _tagged_write(obj: Any, buf: bytearray, fmt: "TaggedFormat") -> None:
    """Append *obj*'s tagged encoding to *buf*.

    Containers write their children first, then splice the
    ``tag[n]#len#`` header in at the container's start offset — one
    buffer throughout instead of a chunk list per nesting level.
    """
    tp = type(obj)
    if tp is str:
        raw = obj.encode("utf-8")
        buf += b"text#%d#" % len(raw)
        buf += raw
    elif tp is int:
        buf += b"int#"
        raw = b"%d" % obj
        buf += b"%d#" % len(raw)
        buf += raw
    elif obj is None:
        buf += b"nil#0#"
    elif obj is True:
        buf += b"bool#4#true"
    elif obj is False:
        buf += b"bool#5#false"
    elif tp is float:
        raw = repr(obj).encode("ascii")
        buf += b"real#%d#" % len(raw)
        buf += raw
    elif tp is dict:
        start = len(buf)
        for key in sorted(obj):
            if type(key) is str:
                raw = key.encode("utf-8")
                buf += b"text#%d#" % len(raw)
                buf += raw
            else:
                fmt._check_key(key)
                _tagged_write(key, buf, fmt)
            _tagged_write(obj[key], buf, fmt)
        buf[start:start] = b"map[%d]#%d#" % (len(obj), len(buf) - start)
    elif tp is list or tp is tuple:
        start = len(buf)
        for item in obj:
            _tagged_write(item, buf, fmt)
        buf[start:start] = b"list[%d]#%d#" % (len(obj), len(buf) - start)
    elif tp is bytes:
        buf += b"octets#%d#" % len(obj)
        buf += obj
    else:
        chunks: List[bytes] = []
        fmt._write(obj, chunks)
        buf += b"".join(chunks)


def _tagged_read(data: bytes, cur: _Cursor) -> Any:
    """Decode one tagged value at ``cur.pos``, advancing the cursor."""
    pos = cur.pos
    first = data.find(b"#", pos)
    if first < 0:
        raise MarshalError("truncated tagged header")
    second = data.find(b"#", first + 1)
    if second < 0:
        raise MarshalError("truncated tagged header")
    tag = data[pos:first]
    length = int(data[first + 1:second])
    start = second + 1
    end = start + length
    if end > len(data):
        raise MarshalError("truncated tagged payload")
    cur.pos = end
    if tag == b"text":
        return data[start:end].decode("utf-8")
    if tag == b"int":
        return int(data[start:end])
    if tag == b"nil":
        return None
    if tag == b"bool":
        return data[start:end] == b"true"
    if tag == b"real":
        return float(data[start:end])
    if tag == b"octets":
        return bytes(data[start:end])
    bracket = tag.find(b"[")
    if bracket >= 0:
        base = tag[:bracket]
        count = int(tag[bracket + 1:-1] if tag.endswith(b"]")
                    else tag[bracket + 1:])
        if base == b"list":
            cur.pos = start
            items = []
            append = items.append
            for _ in range(count):
                append(_tagged_read(data, cur))
            cur.pos = end
            return items
        if base == b"map":
            cur.pos = start
            result: Dict[str, Any] = {}
            for _ in range(count):
                key = _tagged_read(data, cur)
                result[key] = _tagged_read(data, cur)
            cur.pos = end
            return result
        raise MarshalError(f"unknown tagged tag {base.decode('ascii')!r}")
    raise MarshalError(f"unknown tagged tag {tag.decode('ascii')!r}")


class TaggedFormat(WireFormat):
    """Self-describing textual format: ``tag#len#payload`` framing.

    Strings and bytes are length-prefixed (no escaping needed); containers
    carry an element count and concatenate their children.
    """

    name = "tagged"

    _MAGIC = b"@TAGGED@"

    def dumps(self, obj: Any) -> bytes:
        if not _ZERO_COPY:
            return self.dumps_reference(obj)
        buf = bytearray(self._MAGIC)
        _tagged_write(obj, buf, self)
        return bytes(buf)

    def dumps_reference(self, obj: Any) -> bytes:
        """Encode via the original chunk-list walk (the format spec)."""
        chunks: List[bytes] = [self._MAGIC]
        self._write(obj, chunks)
        return b"".join(chunks)

    def _frame(self, tag: str, payload: bytes) -> bytes:
        return f"{tag}#{len(payload)}#".encode("ascii") + payload

    def _write(self, obj: Any, out: List[bytes]) -> None:
        if obj is None:
            out.append(self._frame("nil", b""))
        elif obj is True or obj is False:
            out.append(self._frame("bool", b"true" if obj else b"false"))
        elif isinstance(obj, int):
            out.append(self._frame("int", str(obj).encode("ascii")))
        elif isinstance(obj, float):
            out.append(self._frame("real", repr(obj).encode("ascii")))
        elif isinstance(obj, str):
            out.append(self._frame("text", obj.encode("utf-8")))
        elif isinstance(obj, bytes):
            out.append(self._frame("octets", obj))
        elif isinstance(obj, (list, tuple)):
            inner: List[bytes] = []
            for item in obj:
                self._write(item, inner)
            body = b"".join(inner)
            out.append(f"list[{len(obj)}]#{len(body)}#".encode("ascii")
                       + body)
        elif isinstance(obj, dict):
            inner = []
            for key in sorted(obj):
                self._check_key(key)
                self._write(key, inner)
                self._write(obj[key], inner)
            body = b"".join(inner)
            out.append(f"map[{len(obj)}]#{len(body)}#".encode("ascii")
                       + body)
        else:
            raise MarshalError(
                f"tagged format cannot encode {type(obj).__name__}")

    def loads(self, data: bytes) -> Any:
        if not _ZERO_COPY:
            return self.loads_reference(data)
        if not data.startswith(self._MAGIC):
            raise MarshalError(
                "not a tagged-format message (wrong magic); the sender "
                "used an incompatible wire format")
        cur = _Cursor(len(self._MAGIC))
        try:
            obj = _tagged_read(data, cur)
        except ValueError as exc:
            raise MarshalError(f"malformed tagged message: {exc}") from exc
        if cur.pos != len(data):
            raise MarshalError("trailing bytes in tagged message")
        return obj

    def loads_reference(self, data: bytes) -> Any:
        """Decode via the original tuple-threading walk."""
        if not data.startswith(self._MAGIC):
            raise MarshalError(
                "not a tagged-format message (wrong magic); the sender "
                "used an incompatible wire format")
        obj, offset = self._read(data, len(self._MAGIC))
        if offset != len(data):
            raise MarshalError("trailing bytes in tagged message")
        return obj

    def _read_header(self, data: bytes, offset: int):
        first = data.find(b"#", offset)
        if first < 0:
            raise MarshalError("truncated tagged header")
        second = data.find(b"#", first + 1)
        if second < 0:
            raise MarshalError("truncated tagged header")
        tag = data[offset:first].decode("ascii")
        length = int(data[first + 1:second])
        return tag, length, second + 1

    def _read(self, data: bytes, offset: int) -> Tuple[Any, int]:
        tag, length, offset = self._read_header(data, offset)
        payload = data[offset:offset + length]
        if len(payload) != length:
            raise MarshalError("truncated tagged payload")
        end = offset + length
        count = None
        if "[" in tag:
            base, _, rest = tag.partition("[")
            count = int(rest.rstrip("]"))
            tag = base
        if tag == "nil":
            return None, end
        if tag == "bool":
            return payload == b"true", end
        if tag == "int":
            return int(payload), end
        if tag == "real":
            return float(payload), end
        if tag == "text":
            return payload.decode("utf-8"), end
        if tag == "octets":
            return bytes(payload), end
        if tag == "list":
            items = []
            inner = offset
            for _ in range(count or 0):
                item, inner = self._read(data, inner)
                items.append(item)
            return items, end
        if tag == "map":
            result: Dict[str, Any] = {}
            inner = offset
            for _ in range(count or 0):
                key, inner = self._read(data, inner)
                value, inner = self._read(data, inner)
                result[key] = value
            return result, end
        raise MarshalError(f"unknown tagged tag {tag!r}")


_REGISTRY: Dict[str, WireFormat] = {}


def register_format(fmt: WireFormat) -> None:
    _REGISTRY[fmt.name] = fmt


def get_format(name: str) -> WireFormat:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise MarshalError(f"unknown wire format {name!r}") from None


def available_formats() -> List[str]:
    return sorted(_REGISTRY)


register_format(PackedFormat())
register_format(TaggedFormat())
