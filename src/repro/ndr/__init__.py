"""Network data representation (NDR).

Access transparency (section 5.1) needs generated marshalling: values cross
the network as bytes in a node's *wire format*.  Two genuinely incompatible
formats are provided — ``packed`` (compact binary) and ``tagged``
(self-describing textual) — so the heterogeneity and federation machinery
has real representation differences to bridge, as the paper requires
(section 4.2).
"""

from repro.ndr.formats import (
    WireFormat,
    PackedFormat,
    TaggedFormat,
    get_format,
    register_format,
    available_formats,
)
from repro.ndr.sigcodec import signature_to_obj, signature_from_obj
from repro.ndr.codec import Marshaller

__all__ = [
    "WireFormat",
    "PackedFormat",
    "TaggedFormat",
    "get_format",
    "register_format",
    "available_formats",
    "signature_to_obj",
    "signature_from_obj",
    "Marshaller",
]
