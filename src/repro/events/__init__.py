"""Event distribution: typed channels and a distributed blackboard.

Two structures the paper gestures at, built from the primitives the
platform already has:

* :class:`EventChannel` — topic-based publish/subscribe over
  *announcements* (section 5.1's request-only interactions: fire-and-
  forget, failures unreportable, ideal for events);
* :class:`Blackboard` — the "more general distributed 'blackboard'
  structures" of section 5.3: shared tuples posted by anyone, read and
  taken by anyone, replicable behind a group reference for reliability.
"""

from repro.events.channel import EventChannel, Subscriber
from repro.events.blackboard import Blackboard

__all__ = ["EventChannel", "Subscriber", "Blackboard"]
