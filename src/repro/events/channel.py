"""Topic-based event channels.

The channel is an ordinary exported ADT.  Publishers *announce* events
at it; the channel re-announces to every subscriber's notify interface.
Both legs are request-only interactions, so event distribution is
asynchronous end-to-end and inherits the network's loss behaviour —
subscribers that need reliability subscribe a replicated group or poll a
blackboard instead.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.comp.model import OdpObject, operation, signature_of
from repro.comp.reference import InterfaceRef
from repro.types.conformance import signature_conforms


class Subscriber(OdpObject):
    """A convenience subscriber implementation collecting events."""

    def __init__(self) -> None:
        self.events: List[Tuple[str, Any]] = []

    @operation(params=[str, "any"], announcement=True)
    def notify(self, topic, payload):
        self.events.append((topic, payload))

    def topics(self) -> List[str]:
        return [topic for topic, _ in self.events]


#: The structural requirement a subscriber reference must meet.
SUBSCRIBER_SIGNATURE = signature_of(Subscriber)


class EventChannel(OdpObject):
    """A named pub/sub hub.

    Subscriptions are (topic-prefix, subscriber-ref) pairs: a subscriber
    registered for ``"stock."`` receives ``"stock.up"`` and
    ``"stock.down"``.  The empty prefix receives everything.
    """

    def __init__(self, name: str = "events") -> None:
        self.name = name
        self._subscriptions: Dict[str, List[Tuple[str, InterfaceRef]]] = {}
        self._counter = 0
        self.published = 0
        self.fanout = 0
        #: Set by the hosting capsule right after export (the channel
        #: needs a binder to reach its subscribers).
        self._binder = None

    def attach_binder(self, binder) -> None:
        self._binder = binder

    # -- subscription management (interrogations) ----------------------------

    @operation(params=[str, "any"], returns=[str],
               errors={"not_a_subscriber": []})
    def subscribe(self, topic_prefix, subscriber_ref):
        from repro.comp.outcomes import Signal

        if not isinstance(subscriber_ref, InterfaceRef) or \
                not signature_conforms(subscriber_ref.signature,
                                       SUBSCRIBER_SIGNATURE):
            raise Signal("not_a_subscriber")
        self._counter += 1
        subscription_id = f"{self.name}.sub-{self._counter}"
        self._subscriptions.setdefault(topic_prefix, []).append(
            (subscription_id, subscriber_ref))
        return subscription_id

    @operation(params=[str], errors={"unknown": []})
    def unsubscribe(self, subscription_id):
        from repro.comp.outcomes import Signal

        for prefix, subscribers in self._subscriptions.items():
            for index, (sid, _) in enumerate(subscribers):
                if sid == subscription_id:
                    del subscribers[index]
                    return
        raise Signal("unknown")

    @operation(returns=[int], readonly=True)
    def subscriber_count(self):
        return sum(len(subs) for subs in self._subscriptions.values())

    # -- publication (announcement in, announcements out) ----------------------

    @operation(params=[str, "any"], announcement=True)
    def publish(self, topic, payload):
        self.published += 1
        if self._binder is None:
            return
        for prefix, subscribers in self._subscriptions.items():
            if not topic.startswith(prefix):
                continue
            for _, subscriber_ref in list(subscribers):
                try:
                    proxy = self._binder.bind(subscriber_ref)
                    proxy.notify(topic, payload)
                    self.fanout += 1
                except Exception:
                    # Event delivery is best-effort by construction.
                    pass


def export_channel(capsule, binder, name: str = "events"):
    """Export a channel wired to a binder; returns (channel, ref)."""
    channel = EventChannel(name)
    ref = capsule.export(channel)
    channel.attach_binder(binder)
    return channel, ref
