"""A distributed blackboard (tuple space).

Section 5.3 names "more general distributed 'blackboard' structures" as
one of the things the basic group-execution mechanism supports.  The
blackboard is a plain ADT — post/read/take over pattern-matched tuples —
which becomes reliable and available exactly by replicating it with
``domain.groups.create(Blackboard, capsules, spec)``: writes (post/take)
go through the total-order protocol, reads can spread.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.comp.model import OdpObject, operation
from repro.comp.outcomes import Signal
from repro.util.freeze import FrozenRecord


def _matches(entry, pattern) -> bool:
    """Tuple matching: same arity; None in the pattern is a wildcard."""
    if len(entry) != len(pattern):
        return False
    for have, want in zip(entry, pattern):
        if want is None:
            continue
        if have != want:
            return False
    return True


class Blackboard(OdpObject):
    """A tuple space: post, read (non-destructive), take (destructive)."""

    def __init__(self) -> None:
        self.entries: List[tuple] = []
        self.posted = 0
        self.taken = 0

    @operation(params=[["any"]])
    def post(self, entry):
        """Add a tuple to the board."""
        self.entries.append(tuple(entry))
        self.posted += 1

    @operation(params=[["any"]], returns=[["any"]],
               errors={"no_match": []}, readonly=True)
    def read(self, pattern):
        """Return the first matching tuple without removing it."""
        for entry in self.entries:
            if _matches(entry, tuple(pattern)):
                return (list(entry),)[0]
        raise Signal("no_match")

    @operation(params=[["any"]], returns=[["any"]],
               errors={"no_match": []})
    def take(self, pattern):
        """Remove and return the first matching tuple."""
        for index, entry in enumerate(self.entries):
            if _matches(entry, tuple(pattern)):
                del self.entries[index]
                self.taken += 1
                return (list(entry),)[0]
        raise Signal("no_match")

    @operation(params=[["any"]], returns=[int], readonly=True)
    def count(self, pattern):
        """How many tuples match the pattern."""
        return sum(1 for entry in self.entries
                   if _matches(entry, tuple(pattern)))

    @operation(returns=[int], readonly=True)
    def size(self):
        return len(self.entries)
