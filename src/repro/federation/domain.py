"""Domains and the federation graph.

A domain is one autonomous organisation: it owns nodes and runs its *own*
infrastructure services — relocator, trader, transaction manager, secret
authority, security policies, replica groups, stable repository, migrator,
recovery, passivation and garbage collection.  No service spans domains;
only federation links do (sections 4.2, 6: no hierarchical management
structure can be assumed).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.engine.nucleus import Nucleus
from repro.errors import FederationError
from repro.federation.links import FederationLink
from repro.net.network import Network
from repro.sim.scheduler import Scheduler
from repro.util.ids import IdMinter


class Domain:
    """One administratively autonomous system in the federation."""

    def __init__(self, name: str, federation: "Federation") -> None:
        self.name = name
        self.federation = federation
        self.minter = IdMinter()
        self.nuclei: Dict[str, Nucleus] = {}
        self._gateway: Optional[Tuple[str, str]] = None  # (node, capsule)
        # Services (created lazily so each subsystem stays optional).
        self._relocator = None
        self._tx_manager = None
        self._authority = None
        self._policies = None
        self._audit = None
        self._groups = None
        self._repository = None
        self._migrator = None
        self._recovery = None
        self._passivation = None
        self._trader = None
        self._collector = None
        self._tracer = None
        self._supervisor = None
        self._shards = None
        self._leases = None

    # -- structure -------------------------------------------------------------

    @property
    def scheduler(self) -> Scheduler:
        return self.federation.scheduler

    @property
    def network(self) -> Network:
        return self.federation.network

    def mint(self, prefix: str) -> str:
        return f"{self.name}.{self.minter.mint(prefix)}"

    def add_node(self, address: str,
                 native_format: str = "packed",
                 processing_ms: float = 0.05) -> Nucleus:
        node = self.network.add_node(address, native_format)
        nucleus = Nucleus(self.network, node, domain=self,
                          processing_ms=processing_ms)
        self.nuclei[address] = nucleus
        self.federation.node_domain[address] = self.name
        # Every node can intercept at the boundary: gateways are not a
        # single point of failure.
        nucleus.create_capsule("gateway")
        if self._gateway is None:
            self._gateway = (address, "gateway")
        return nucleus

    def gateway(self) -> Tuple[str, str]:
        if self._gateway is None:
            raise FederationError(
                f"domain {self.name} has no nodes, hence no gateway")
        return self._gateway

    def gateways(self) -> List[Tuple[str, str]]:
        """All boundary interception points, primary first."""
        primary = self._gateway
        others = [(address, "gateway") for address in sorted(self.nuclei)
                  if primary is None or address != primary[0]]
        return ([primary] if primary is not None else []) + others

    def gateway_capsule(self):
        node, capsule_name = self.gateway()
        return self.nuclei[node].capsules[capsule_name]

    def wire_format_of(self, node_address: str) -> str:
        return self.network.node(node_address).native_format

    def owns_node(self, node_address: str) -> bool:
        return node_address in self.nuclei

    def defined_here(self, ref) -> bool:
        """Is this domain the reference's defining context?"""
        if ref.context:
            return ref.home_domain == self.name
        return any(self.owns_node(p.node) for p in ref.paths)

    # -- services (lazy) ----------------------------------------------------------

    @property
    def relocator(self):
        if self._relocator is None:
            from repro.relocation.relocator import Relocator
            self._relocator = Relocator(self.name)
        return self._relocator

    @property
    def tx_manager(self):
        if self._tx_manager is None:
            from repro.tx.transaction import TransactionManager

            def live_nucleus():
                faults = self.network.faults
                for nucleus in self.nuclei.values():
                    if not faults.is_crashed(nucleus.node_address):
                        return nucleus
                return None

            home = next(iter(self.nuclei.values()), None)
            self._tx_manager = TransactionManager(
                self.name, registry=self.federation.tx_registry,
                home_nucleus=home, nucleus_provider=live_nucleus)
        return self._tx_manager

    @property
    def authority(self):
        if self._authority is None:
            from repro.security.secrets import SecretAuthority
            self._authority = SecretAuthority(self.name)
        return self._authority

    @property
    def policies(self):
        if self._policies is None:
            from repro.security.policy import PolicyStore
            self._policies = PolicyStore()
        return self._policies

    @property
    def audit(self):
        if self._audit is None:
            from repro.security.audit import AuditLog
            self._audit = AuditLog(self.name)
        return self._audit

    @property
    def groups(self):
        if self._groups is None:
            from repro.groups.registry import GroupRegistry
            self._groups = GroupRegistry(self)
        return self._groups

    @property
    def repository(self):
        if self._repository is None:
            from repro.storage.repository import StableRepository
            self._repository = StableRepository(
                self.name, clock=self.scheduler.clock)
        return self._repository

    @property
    def migrator(self):
        if self._migrator is None:
            from repro.migration.migrator import Migrator
            self._migrator = Migrator(self)
        return self._migrator

    @property
    def recovery(self):
        if self._recovery is None:
            from repro.recovery.recover import RecoveryManager
            self._recovery = RecoveryManager(self)
        return self._recovery

    @property
    def passivation(self):
        if self._passivation is None:
            from repro.storage.passivation import PassivationManager
            self._passivation = PassivationManager(self)
        return self._passivation

    @property
    def trader(self):
        if self._trader is None:
            from repro.trading.trader import Trader
            self._trader = Trader(self.name, domain=self)
        return self._trader

    @property
    def collector(self):
        if self._collector is None:
            from repro.gc.collector import Collector
            self._collector = Collector(self)
        return self._collector

    @property
    def tracer(self):
        """The domain's causal trace collector (section 7.4)."""
        if self._tracer is None:
            from repro.trace.collector import TraceCollector
            self._tracer = TraceCollector(self.name, self.scheduler.clock)
        return self._tracer

    @property
    def supervisor(self):
        """The self-healing supervisor (detect -> diagnose -> repair).

        Created lazily and *not* started: call ``start()`` to begin
        heartbeating and supervision.
        """
        if self._supervisor is None:
            from repro.heal.supervisor import Supervisor
            self._supervisor = Supervisor(self)
        return self._supervisor

    @property
    def shards(self):
        """The sharded-object-space registry (``repro.shard``)."""
        if self._shards is None:
            from repro.shard.space import ShardManager
            self._shards = ShardManager(self)
        return self._shards

    @property
    def leases(self):
        """The lease authority for client-side caching (``repro.lease``)."""
        if self._leases is None:
            from repro.lease.authority import LeaseAuthority
            self._leases = LeaseAuthority(self)
        return self._leases

    # -- hooks used by the engine ---------------------------------------------------

    def notice_export(self, nucleus, capsule, interface, ref) -> None:
        """Every export registers its birth location (section 5.4)."""
        self.relocator.register(ref)

    def current_transaction(self):
        return self.tx_manager.current() if self._tx_manager else None

    def credentials_for(self, principal: str) -> Dict[str, str]:
        return self.authority.credentials_for(principal)

    # -- federation crossing (gateway side) ---------------------------------------

    def handle_fedfwd(self, nucleus: Nucleus, capsule, obj: dict) -> dict:
        """Process a forwarded cross-domain invocation at our gateway."""
        from repro.engine.wire_errors import encode_error
        from repro.errors import OdpError
        from repro.federation.layer import gateway_process

        marshaller = nucleus.marshaller_for(capsule)
        try:
            termination = gateway_process(self, nucleus, capsule,
                                          marshaller, obj)
            return {"term": marshaller.marshal(termination)}
        except OdpError as exc:
            return {"error": encode_error(exc, marshaller)}

    def __repr__(self) -> str:
        return f"Domain({self.name}, {len(self.nuclei)} nodes)"


class Federation:
    """The arbitrary graph of autonomous domains."""

    def __init__(self, scheduler: Scheduler, network: Network) -> None:
        self.scheduler = scheduler
        self.network = network
        self.domains: Dict[str, Domain] = {}
        self.node_domain: Dict[str, str] = {}
        self._links: Dict[Tuple[str, str], FederationLink] = {}
        #: Shared transaction registry: server layers resolve incoming
        #: transaction ids here (2PC control messages still cross the wire).
        self.tx_registry: Dict[str, object] = {}
        from repro.tx.deadlock import WaitsForGraph
        self.waits_graph = WaitsForGraph()

    # -- domains ------------------------------------------------------------------

    def create_domain(self, name: str) -> Domain:
        if name in self.domains:
            raise ValueError(f"duplicate domain {name!r}")
        domain = Domain(name, self)
        self.domains[name] = domain
        return domain

    def domain(self, name: str) -> Domain:
        try:
            return self.domains[name]
        except KeyError:
            raise FederationError(f"unknown domain {name!r}") from None

    def domain_of_node(self, node_address: str) -> Optional[str]:
        return self.node_domain.get(node_address)

    def domain_of_ref(self, ref) -> Optional[str]:
        if ref.context:
            return ref.home_domain
        if ref.paths:
            return self.domain_of_node(ref.primary_path().node)
        return None

    # -- links ------------------------------------------------------------------

    def link(self, source: str, target: str, bidirectional: bool = True,
             **contract) -> FederationLink:
        """Join two domains with a contract (section 4.2)."""
        self.domain(source)
        self.domain(target)
        forward = FederationLink(source, target, **contract)
        self._links[(source, target)] = forward
        if bidirectional:
            self._links.setdefault((target, source),
                                   FederationLink(target, source,
                                                  **contract))
        return forward

    def link_between(self, source: str, target: str) -> FederationLink:
        link = self._links.get((source, target))
        if link is None:
            raise FederationError(
                f"no federation link {source} -> {target}")
        return link

    def has_link(self, source: str, target: str) -> bool:
        return (source, target) in self._links

    def accounting_report(self) -> Dict[str, Dict[str, int]]:
        """Per-link usage by principal — the settlement view both
        organisations audit against their contract."""
        report: Dict[str, Dict[str, int]] = {}
        for (source, target), link in sorted(self._links.items()):
            usage = link.usage_by_principal()
            if usage:
                report[f"{source}->{target}"] = usage
        return report

    def route(self, source: str, target: str) -> List[str]:
        """Shortest link path between two domains (BFS over the graph)."""
        if source == target:
            return [source]
        frontier = [[source]]
        seen = {source}
        while frontier:
            path = frontier.pop(0)
            for (a, b) in self._links:
                if a != path[-1] or b in seen:
                    continue
                if b == target:
                    return path + [b]
                seen.add(b)
                frontier.append(path + [b])
        raise FederationError(
            f"no federation route from {source} to {target}")
