"""Federation links: the contracts between autonomous domains.

A link is directional (A may export to B without the reverse) and carries
the administrative agreement: which principals may cross, how their names
map into the target domain, and which operations the boundary permits.
Section 4.2: "At the boundaries between organizations there will
necessarily be gateways to enforce the security and accounting policies of
each organization and oversee the interactions between them."
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.errors import FederationError


class FederationLink:
    """One direction of an inter-domain contract."""

    def __init__(self, source: str, target: str,
                 allowed_principals: Optional[Iterable[str]] = None,
                 principal_map: Optional[Dict[str, str]] = None,
                 denied_operations: Optional[Iterable[str]] = None) -> None:
        self.source = source
        self.target = target
        #: None means any principal may cross; otherwise an allow-list.
        self.allowed_principals: Optional[Set[str]] = (
            set(allowed_principals) if allowed_principals is not None
            else None)
        #: Maps source-domain principal names to target-domain names.
        self.principal_map: Dict[str, str] = dict(principal_map or {})
        self.denied_operations: Set[str] = set(denied_operations or ())
        self.crossings = 0
        self.rejections = 0
        #: Accounting: (principal, operation) -> crossings.  Gateways
        #: "enforce the security and accounting policies of each
        #: organization" (section 4.2); this is the accounting half.
        self.ledger: Dict[tuple, int] = {}

    def account(self, principal: Optional[str], operation: str) -> None:
        key = (principal or "<anonymous>", operation)
        self.ledger[key] = self.ledger.get(key, 0) + 1

    def usage_by_principal(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for (principal, _), count in self.ledger.items():
            totals[principal] = totals.get(principal, 0) + count
        return totals

    def check_egress(self, principal: Optional[str],
                     operation: str) -> None:
        """Enforced in the source domain before the message leaves."""
        if operation in self.denied_operations:
            self.rejections += 1
            raise FederationError(
                f"link {self.source}->{self.target} denies operation "
                f"{operation!r}")
        if self.allowed_principals is not None and \
                (principal is None
                 or principal not in self.allowed_principals):
            self.rejections += 1
            raise FederationError(
                f"link {self.source}->{self.target} does not admit "
                f"principal {principal!r}")

    def map_principal(self, principal: Optional[str]) -> Optional[str]:
        """Translate a crossing principal into the target's namespace."""
        if principal is None:
            return None
        return self.principal_map.get(principal, principal)

    def __repr__(self) -> str:
        return f"FederationLink({self.source}->{self.target})"
