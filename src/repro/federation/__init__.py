"""Federation (paper sections 4.2, 5.6, 6).

"The reality is that of peer-to-peer federations of organizations
interacting with each other according to agreed contracts and retaining
their autonomy."  A :class:`Domain` owns its own infrastructure services
(relocator, trader, transaction manager, secret authority, policies,
groups, repository); a :class:`Federation` is the arbitrary graph of
domains joined by :class:`FederationLink` contracts; interceptors at the
boundaries translate technology and enforce administration.
"""

from repro.federation.naming import NameContext, ContextualName, annotate_refs
from repro.federation.links import FederationLink
from repro.federation.domain import Domain, Federation
from repro.federation.layer import FederationClientLayer

__all__ = [
    "NameContext",
    "ContextualName",
    "annotate_refs",
    "FederationLink",
    "Domain",
    "Federation",
    "FederationClientLayer",
]
