"""Federation transparency: the boundary-crossing machinery.

Client side: :class:`FederationClientLayer` detects that the target
interface is defined in another domain, checks the egress contract, adds
context-relative annotations, and forwards the invocation to the next
domain's *gateway* over the network (in the gateway's native wire format —
this is where technology translation physically happens).

Gateway side: :func:`gateway_process` performs the administrative
interception of section 5.6 — ingress checks, principal mapping,
credential re-issue — then either delivers locally or forwards to the next
hop along the federation route.  Replies crossing back out get their
references annotated with the defining context (section 6).
"""

from __future__ import annotations

from typing import Optional

from repro.comp.constraints import EnvironmentConstraints
from repro.comp.invocation import (
    Invocation,
    InvocationContext,
    InvocationKind,
)
from repro.comp.outcomes import Termination
from repro.engine.layers import ClientLayer
from repro.engine.nucleus import FORMAT_ERROR_REPLY, Nucleus
from repro.engine.wire_errors import raise_error
from repro.errors import FederationError, MarshalError, ProtocolMismatchError
from repro.federation.naming import annotate_refs
from repro.ndr.formats import get_format
from repro.trace.context import TraceContext
from repro.trace.span import NULL_SPAN


class FederationClientLayer(ClientLayer):
    """Routes invocations whose target lives in a foreign domain."""

    name = "federation"

    def __init__(self, nucleus, capsule, domain) -> None:
        self.nucleus = nucleus
        self.capsule = capsule
        self.domain = domain
        self.channel = None
        self.crossings = 0

    def attach(self, channel) -> None:
        self.channel = channel

    def request(self, invocation: Invocation, next_layer) -> Termination:
        federation = self.domain.federation
        target_domain = federation.domain_of_ref(self.channel.ref)
        if target_domain is None or target_domain == self.domain.name:
            return next_layer(invocation)

        route = federation.route(self.domain.name, target_domain)
        next_hop = route[1]
        link = federation.link_between(self.domain.name, next_hop)
        link.check_egress(invocation.context.principal,
                          invocation.operation)
        link.crossings += 1
        link.account(invocation.context.principal, invocation.operation)
        self.crossings += 1

        invocation.args = annotate_refs(
            invocation.args, self.domain.name, self.domain.defined_here)
        invocation.context.via_domains = (
            invocation.context.via_domains + (self.domain.name,))
        if invocation.context.origin_domain is None:
            invocation.context.origin_domain = self.domain.name

        span = self.nucleus.tracer.span(
            "federation.forward", "federation", invocation.context.trace,
            node=self.nucleus.node_address,
            tags={"to_domain": target_domain, "next_hop": next_hop})
        saved_trace = invocation.context.trace
        if span is not NULL_SPAN:
            invocation.context.trace = span.context
        try:
            termination = forward_to_domain(
                self.nucleus, self.capsule, federation, next_hop,
                self.channel.ref, invocation)
        except Exception as exc:
            span.tag("error", type(exc).__name__).finish(status="error")
            raise
        finally:
            invocation.context.trace = saved_trace
        span.finish()
        if termination is None:
            return Termination("ok", ())
        return termination


def forward_to_domain(nucleus, capsule, federation, hop_domain_name: str,
                      ref, invocation: Invocation) -> Termination:
    """One network exchange with *hop_domain*, trying each of its
    boundary gateways until one is reachable."""
    from repro.errors import NodeUnreachableError

    hop_domain = federation.domain(hop_domain_name)
    marshaller = nucleus.marshaller_for(capsule)
    tracer = nucleus.tracer
    parent_trace = invocation.context.trace
    last_error = None
    try:
        for gw_node, gw_capsule in hop_domain.gateways():
            span = tracer.span(
                "net.request", "net", parent_trace,
                node=nucleus.node_address,
                tags={"to": gw_node, "hop_domain": hop_domain_name})
            if span is not NULL_SPAN:
                invocation.context.trace = span.context
            wire = get_format(
                federation.network.node(gw_node).native_format)
            payload = wire.dumps({
                "capsule": gw_capsule,
                "fedfwd": {
                    "ref": marshaller.marshal(ref),
                    "inv": {
                        "id": invocation.interface_id,
                        "op": invocation.operation,
                        "args": marshaller.marshal_args(invocation.args),
                        "kind": invocation.kind.value,
                        "epoch": invocation.epoch,
                        "ctx": Nucleus.encode_context(invocation.context),
                    },
                },
            })
            try:
                reply_bytes = federation.network.request(
                    nucleus.node_address, gw_node, payload)
            except NodeUnreachableError as exc:
                span.finish(status="unreachable")
                last_error = exc
                continue
            span.finish()
            if reply_bytes == FORMAT_ERROR_REPLY:
                raise ProtocolMismatchError(
                    f"gateway {gw_node} could not decode our message")
            try:
                reply = wire.loads(reply_bytes)
            except MarshalError as exc:
                raise ProtocolMismatchError(str(exc)) from exc
            if "error" in reply:
                raise_error(reply["error"], marshaller)
            return marshaller.unmarshal(reply["term"])
    finally:
        invocation.context.trace = parent_trace
    raise FederationError(
        f"no reachable gateway in domain {hop_domain_name}: {last_error}")


def gateway_process(domain, nucleus, capsule, marshaller,
                    obj: dict) -> Termination:
    """Administrative + technology interception at a domain gateway."""
    federation = domain.federation
    ref = marshaller.unmarshal(obj["ref"])
    inv_obj = obj["inv"]
    ctx_obj = inv_obj.get("ctx", {})
    via = tuple(ctx_obj.get("via_domains", ()))
    if not via:
        raise FederationError(
            f"gateway {domain.name}: forwarded invocation carries no "
            f"via-domain trail")
    from_domain = via[-1]
    link = federation.link_between(from_domain, domain.name)
    link.crossings += 1
    link.account(obj["inv"].get("ctx", {}).get("principal"),
                 obj["inv"].get("op", "?"))

    # Ingress: map the principal into our namespace and re-issue local
    # credentials if the mapped principal is enrolled here — the gateway
    # is the trusted intermediary between the two secret authorities.
    principal = link.map_principal(ctx_obj.get("principal"))
    credentials = (domain.authority.credentials_for(principal)
                   if principal and domain.authority.is_enrolled(principal)
                   else {})

    context = InvocationContext(
        principal=principal,
        credentials=credentials,
        transaction_id=ctx_obj.get("transaction_id"),
        origin_domain=ctx_obj.get("origin_domain"),
        via_domains=via,
        extra=dict(ctx_obj.get("extra", {})),
        trace=TraceContext.from_wire(ctx_obj.get("trace")),
    )
    invocation = Invocation(
        interface_id=inv_obj["id"],
        operation=inv_obj["op"],
        args=marshaller.unmarshal_args(inv_obj.get("args", [])),
        kind=(InvocationKind.ANNOUNCEMENT
              if inv_obj.get("kind") == "announcement"
              else InvocationKind.INTERROGATION),
        context=context,
        epoch=inv_obj.get("epoch", 0),
    )

    gw_span = domain.tracer.span(
        "federation.gateway", "federation", invocation.context.trace,
        node=nucleus.node_address,
        tags={"domain": domain.name, "from_domain": from_domain})
    if gw_span is not NULL_SPAN:
        invocation.context.trace = gw_span.context

    target_domain = federation.domain_of_ref(ref)
    try:
        if target_domain == domain.name:
            termination = _deliver_locally(domain, nucleus, capsule, ref,
                                           invocation)
        else:
            route = federation.route(domain.name, target_domain)
            next_hop = route[1]
            egress = federation.link_between(domain.name, next_hop)
            egress.check_egress(invocation.context.principal,
                                invocation.operation)
            egress.crossings += 1
            invocation.context.via_domains = via + (domain.name,)
            termination = forward_to_domain(nucleus, capsule, federation,
                                            next_hop, ref, invocation)
    except Exception as exc:
        gw_span.tag("error", type(exc).__name__).finish(status="error")
        raise
    gw_span.finish()
    if termination is None:
        termination = Termination("ok", ())
    # Context-relative naming on the way out (section 6).
    return annotate_refs(termination, domain.name, domain.defined_here)


def _deliver_locally(domain, nucleus, capsule, ref,
                     invocation: Invocation) -> Optional[Termination]:
    """The reference is home: strip its context and invoke via a channel
    so location repair and group routing still apply."""
    from repro.transparency.compiler import compile_client_channel

    local_ref = ref.with_context(())
    fresher = domain.relocator.try_lookup(local_ref.interface_id)
    if fresher is not None and fresher.epoch >= local_ref.epoch:
        local_ref = fresher
    channel = compile_client_channel(nucleus, capsule, local_ref,
                                     EnvironmentConstraints.DEFAULT)
    return channel.invoke(invocation.operation, invocation.args,
                          kind=invocation.kind, qos=invocation.qos,
                          context=invocation.context)
