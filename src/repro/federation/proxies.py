"""Proxy objects at domain boundaries (paper section 5.6).

"For a technology boundary the interceptor must stand on the boundary
itself and translate between the two domains.  The translation may be
simple conversion, or it may be that the interceptor has to set up proxy
objects in each domain that stand as representatives of objects on the
other side of the boundary."

Simple conversion is the gateway's normal forwarding path
(:mod:`repro.federation.layer`).  This module is the second form:
:func:`materialize_proxy` exports, into the local gateway capsule, a
*representative object* for a foreign interface.  Local clients then
hold an ordinary local reference — local trading, local GC leases, local
binds — while every invocation is forwarded across the boundary by the
representative.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.comp.invocation import InvocationKind
from repro.comp.model import OdpObject
from repro.comp.outcomes import Signal
from repro.comp.reference import InterfaceRef
from repro.errors import FederationError
from repro.trace.context import current_trace
from repro.trace.span import NULL_SPAN
from repro.types.signature import InterfaceSignature


class ForeignRepresentative(OdpObject):
    """A locally exported stand-in for an object in another domain.

    Methods are installed per operation at construction time, each
    forwarding through a channel bound in the gateway capsule — so the
    forwarding leg gets the full client stack (federation routing,
    context annotation, repair) of the gateway's domain.
    """

    def __init__(self, channel, context_factory,
                 signature: InterfaceSignature,
                 foreign_ref: InterfaceRef) -> None:
        self._channel = channel
        self._context_factory = context_factory
        self._foreign_ref = foreign_ref
        self.forwarded = 0
        for op_name, op_sig in signature.operations.items():
            setattr(self, op_name, self._make_forwarder(op_name, op_sig))

    def _make_forwarder(self, op_name: str, op_sig):
        announcement = op_sig.announcement

        def forward(*args):
            self.forwarded += 1
            kind = (InvocationKind.ANNOUNCEMENT if announcement
                    else InvocationKind.INTERROGATION)
            context = self._context_factory()
            nucleus = self._channel.client_nucleus
            # The representative runs inside the gateway's dispatch, so
            # the forwarding leg continues the ambient (incoming) trace.
            span = nucleus.tracer.span(
                "federation.proxy", "federation", current_trace(),
                node=nucleus.node_address,
                tags={"op": op_name,
                      "foreign": self._foreign_ref.interface_id})
            if span is not NULL_SPAN:
                context.trace = span.context
            try:
                termination = self._channel.invoke(
                    op_name, args, kind=kind, context=context)
            except Exception as exc:
                span.tag("error", type(exc).__name__).finish(status="error")
                raise
            span.finish()
            if announcement or termination is None:
                return None
            if not termination.ok:
                raise Signal(termination.name, *termination.values)
            if not termination.values:
                return None
            if len(termination.values) == 1:
                return termination.values[0]
            return termination.values

        forward.__name__ = op_name
        return forward

    def odp_ready_to_move(self) -> bool:
        # A representative is bound to its gateway; it does not migrate.
        return False


def materialize_proxy(domain, foreign_ref: InterfaceRef,
                      principal: str = None) -> InterfaceRef:
    """Export a local representative of *foreign_ref* at our gateway.

    Returns a *local* reference with the same signature.  Representatives
    are cached per (foreign id, epoch, principal): repeated
    materialisation returns the same local interface.
    """
    federation = domain.federation
    target_domain = federation.domain_of_ref(foreign_ref)
    if target_domain == domain.name:
        return foreign_ref  # already local; nothing to represent
    if target_domain is not None:
        federation.route(domain.name, target_domain)  # raises if none

    cache: Dict[Any, InterfaceRef] = domain.__dict__.setdefault(
        "_proxy_cache", {})
    key = (foreign_ref.interface_id, foreign_ref.epoch, principal)
    cached = cache.get(key)
    if cached is not None:
        return cached

    gw_capsule = domain.gateway_capsule()
    nucleus = gw_capsule.nucleus
    from repro.engine.binder import Binder

    binder = Binder(nucleus, gw_capsule)
    bound = binder.bind(foreign_ref, principal=principal)
    representative = ForeignRepresentative(
        bound._channel, bound._context_factory,
        foreign_ref.signature, foreign_ref)
    local_ref = gw_capsule.export(representative,
                                  signature=foreign_ref.signature)
    cache[key] = local_ref
    return local_ref
