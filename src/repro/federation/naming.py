"""Context-relative naming (paper section 6).

"Federation requires cross linking of autonomous traders: such a structure
is inevitably an arbitrary graph, and therefore names are potentially
ambiguous, since their meaning depends upon where they are interpreted:
there is no canonical root.  The ambiguity can be overcome by extending
names with information about how to get back to their defining context."

Two mechanisms live here:

* :class:`NameContext` — a graph of naming contexts with local bindings and
  links to peer contexts; resolution walks a :class:`ContextualName` whose
  path says how to reach the defining context from the interpreting one.
* :func:`annotate_refs` — the boundary rule: when values cross out of a
  domain, any interface reference defined in that domain gets the domain
  prepended to its context path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.comp.outcomes import Termination
from repro.comp.reference import InterfaceRef
from repro.util.freeze import FrozenRecord


@dataclass(frozen=True)
class ContextualName:
    """A name plus the path back to its defining context.

    ``path`` is a sequence of link names to traverse, starting from the
    interpreting context; an empty path means "defined here".
    """

    path: Tuple[str, ...]
    local: str

    def prefixed(self, link_back: str) -> "ContextualName":
        """Extend the path as the name crosses out through *link_back*."""
        return ContextualName((link_back,) + self.path, self.local)

    def __str__(self) -> str:
        if not self.path:
            return self.local
        return "/".join(self.path) + "::" + self.local


class NameContext:
    """One naming context: local bindings plus links to peer contexts."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._bindings: Dict[str, Any] = {}
        self._links: Dict[str, "NameContext"] = {}

    def bind(self, local_name: str, value: Any) -> None:
        self._bindings[local_name] = value

    def unbind(self, local_name: str) -> None:
        self._bindings.pop(local_name, None)

    def link(self, link_name: str, peer: "NameContext") -> None:
        """Create a named edge to a peer context (arbitrary graph)."""
        self._links[link_name] = peer

    def resolve(self, name: ContextualName) -> Any:
        """Walk the context path, then look up the local name."""
        context: NameContext = self
        for hop in name.path:
            peer = context._links.get(hop)
            if peer is None:
                raise KeyError(
                    f"context {context.name!r} has no link {hop!r} "
                    f"(resolving {name})")
            context = peer
        if name.local not in context._bindings:
            raise KeyError(
                f"context {context.name!r} does not bind {name.local!r}")
        return context._bindings[name.local]

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._bindings))

    def __repr__(self) -> str:
        return (f"NameContext({self.name!r}, {len(self._bindings)} names, "
                f"{len(self._links)} links)")


def annotate_refs(value: Any, domain_name: str,
                  defined_here) -> Any:
    """Prefix *domain_name* onto refs defined in this domain.

    Applied to arguments and results as they cross a domain boundary.
    ``defined_here(ref)`` decides whether the reference's defining context
    is this domain (only those need annotating — "contextual information
    only has to be added to names that cross the borders").
    Returns a structurally identical value.
    """
    if isinstance(value, InterfaceRef):
        if defined_here(value):
            return value.prefixed_context(domain_name)
        return value
    if isinstance(value, Termination):
        return Termination(
            value.name,
            tuple(annotate_refs(v, domain_name, defined_here)
                  for v in value.values))
    if isinstance(value, tuple):
        return tuple(annotate_refs(v, domain_name, defined_here)
                     for v in value)
    if isinstance(value, list):
        return [annotate_refs(v, domain_name, defined_here) for v in value]
    if isinstance(value, FrozenRecord):
        return FrozenRecord({k: annotate_refs(v, domain_name, defined_here)
                             for k, v in value.items()})
    if isinstance(value, dict):
        return {k: annotate_refs(v, domain_name, defined_here)
                for k, v in value.items()}
    return value
