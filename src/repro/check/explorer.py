"""The chaos explorer: one seed in, one fully-recorded run out.

``run_plan`` builds a fresh simulated :class:`~repro.runtime.World`
(three server nodes, one client node), populates it with the reference
workload objects, attaches the plan's chaos windows, then executes the
plan's operations one per virtual-time slot.  Everything observable is
recorded: per-op outcomes into a :class:`~repro.check.history.History`,
client-side models for the oracles, and an end-of-run state snapshot
folded into the run digest.

The run is a pure function of ``(plan, config)``: the world is seeded
from the plan's seed and nothing here consults wall clocks, process
randomness or iteration order of unsorted collections.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.check.history import History, digest_run
from repro.check.plan import (
    CLIENT_NODE,
    SERVER_NODES,
    Plan,
    generate_plan,
)
from repro.check.workload import Account, Counter, KvStore, ShardStore
from repro.comp.constraints import EnvironmentConstraints, ReplicationSpec
from repro.comp.interface import InterfaceState
from repro.comp.invocation import QoS
from repro.comp.outcomes import Signal
from repro.errors import OdpError
from repro.groups.member import GroupMemberLayer
from repro.lease.authority import LeaseAuthority
from repro.net.fault import FaultSchedule
from repro.overload.deadline import DeadlineGate
from repro.resilience.dedup import ReplyCache
from repro.runtime import World
from repro.tx.transaction import TxState
from repro.tx.versions import VersionStore

#: Known platform mutations (oracle-sensitivity switches): name ->
#: (class, flag attribute).  Each silently breaks one guarantee; the
#: matching oracle must catch it or the harness is decorative.
MUTATIONS: Dict[str, Tuple[type, str]] = {
    "replycache": (ReplyCache, "mutate_skip_lookup"),
    "txversions": (VersionStore, "mutate_skip_restore"),
    "quorumbarrier": (GroupMemberLayer, "mutate_skip_quorum_barrier"),
    "leaseinval": (LeaseAuthority, "mutate_skip_invalidation"),
    "deadline": (DeadlineGate, "mutate_skip_deadline_check"),
}

_DOMAIN = "check"
_ALL_NODES = SERVER_NODES + (CLIENT_NODE,)


@dataclass(frozen=True)
class CheckConfig:
    """Tunable knobs of one exploration; defaults fit CI budgets."""

    ops: int = 60
    counters: int = 2
    accounts: int = 3
    initial_balance: int = 100
    group_size: int = 3
    reply_quorum: int = 2
    retries: int = 8
    deadline_ms: float = 400.0
    #: Virtual ms the clock is advanced before each op; also the unit
    #: the plan generator uses to aim chaos windows at the op timeline.
    op_budget_ms: float = 25.0
    max_windows: int = 4
    #: Active platform mutations (keys of :data:`MUTATIONS`).
    mutations: Tuple[str, ...] = ()
    #: Run the domain's self-healing supervisor (repro.heal) during the
    #: plan: heartbeats over the simulated network, observation-based
    #: failure detection, automatic revive/replace/recover.  Activates
    #: the ``self_heal`` oracle.
    supervisor: bool = False
    #: Virtual ms granted after chaos ends for the supervisor to finish
    #: repairs before final observations are taken.
    supervisor_grace_ms: float = 500.0
    #: Drive part of the workload through the high-throughput layer
    #: (repro.perf): plans gain ``batch_burst`` ops issued through a
    #: BatchClient, and every server nucleus gets a token-bucket
    #: admission controller sized so bursts occasionally queue and shed.
    batching: bool = False
    #: Widen chaos generation with symmetric and asymmetric partition
    #: windows and record each member's commit ledger for the
    #: ``split_brain`` oracle.  Gated (not default) so pinned plans and
    #: digests in the regression corpus stay byte-identical.
    partitions: bool = False
    #: Stand up a sharded object space (repro.shard) over the server
    #: nodes: plans gain keyed ``shard_incr``/``shard_get`` ops routed
    #: through the consistent-hash ring and ``shard_move`` ops that
    #: drain/re-admit nodes mid-traffic.  Activates the
    #: ``shard_routing`` oracle.
    shards: bool = False
    shard_count: int = 8
    #: Promote the replicated kv interface to cached mode (repro.lease):
    #: the client node gets a caching LeaseClient with read evidence
    #: recording, the group layer serves follower reads, and plans gain
    #: read-heavy ``cached_get``/``cached_burst`` ops.  Activates the
    #: ``staleness_bound`` oracle.  Gated so default plans/digests stay
    #: byte-identical.
    leases: bool = False
    #: Lease TTL — the staleness bound B the oracle enforces.  Long
    #: enough that a busy reader's half-life renewals outlast the
    #: typical clock advance between ops (so leases stay continuously
    #: held and broken invalidation is *observable* as staleness), short
    #: enough that plans still see grants lapse across the big jumps.
    lease_ttl_ms: float = 600.0
    #: Overload-robustness mode (repro.overload): the client nucleus
    #: stamps propagated deadlines and priorities onto the wire, every
    #: server gets a class-aware admission controller with a brownout
    #: controller, retry budgets enforce, and plans gain ``prio_invoke``
    #: ops with tight deadline tiers plus compute-stall chaos windows.
    #: Activates the ``overload_safety`` oracle.  Gated so default
    #: plans and digests stay byte-identical.
    overload: bool = False
    #: Deadline tiers (ms) for generated ``prio_invoke`` ops: the tight
    #: tiers expire for real under stall/gray windows and admission
    #: queue waits, the loose one mostly survives — so both the shed
    #: path and the happy path run.
    overload_tiers: Tuple[float, float, float] = (2.5, 30.0, 400.0)

    def with_batching(self) -> "CheckConfig":
        return replace(self, batching=True)

    def with_partitions(self) -> "CheckConfig":
        return replace(self, partitions=True)

    def with_shards(self, count: Optional[int] = None) -> "CheckConfig":
        changes: Dict[str, Any] = {"shards": True}
        if count is not None:
            changes["shard_count"] = count
        return replace(self, **changes)

    def with_leases(self, ttl_ms: Optional[float] = None) -> "CheckConfig":
        changes: Dict[str, Any] = {"leases": True}
        if ttl_ms is not None:
            changes["lease_ttl_ms"] = ttl_ms
        return replace(self, **changes)

    def with_overload(self) -> "CheckConfig":
        return replace(self, overload=True)

    def with_mutations(self, *names: str) -> "CheckConfig":
        for name in names:
            if name not in MUTATIONS:
                raise ValueError(f"unknown mutation {name!r}; "
                                 f"known: {sorted(MUTATIONS)}")
        return replace(self, mutations=tuple(names))

    def with_supervisor(self,
                        grace_ms: Optional[float] = None) -> "CheckConfig":
        changes: Dict[str, Any] = {"supervisor": True}
        if grace_ms is not None:
            changes["supervisor_grace_ms"] = grace_ms
        return replace(self, **changes)


@dataclass
class RunResult:
    """Everything the oracles (and the CLI) need to judge one run."""

    plan: Plan
    config: CheckConfig
    events: List[Dict[str, Any]]
    end_state: Dict[str, Any]
    digest: str
    #: name -> {"acked": n, "ambiguous": n, "shed": n} per counter.
    #: Shed increments (ServerBusyError) definitely did not execute, so
    #: they widen neither bound of the exactly-once envelope.
    counters: Dict[str, Dict[str, int]]
    counter_final: Dict[str, Optional[int]]
    #: Client-side account model (committed transfers applied).
    accounts_model: Dict[str, int]
    accounts_final: Dict[str, Optional[int]]
    #: True when any transaction finished with in-doubt participants.
    had_indoubt: bool
    #: Money that may legally be missing/duplicated due to in-doubt 2PC.
    indoubt_allowance: int
    #: Interface ids whose in-doubt outcome could not be re-delivered.
    unresolved_iids: List[str]
    #: key -> ordered [(value, acked)] group-write ledger.
    group_writes: Dict[str, List[Tuple[str, bool]]]
    group_final: Dict[str, Optional[str]]
    #: Per-member end state: index, alive, out_of_sync, data (or None).
    member_states: List[Dict[str, Any]]
    #: Per-surviving-object relocation probe:
    #: {obj, expected_node, resolved_node, final_ok}.
    relocation_probes: List[Dict[str, Any]]
    #: Per-collected-interface snapshot taken just before its sweep:
    #: {iid, state, live_lease}.
    gc_observations: List[Dict[str, Any]]
    #: Object names legally reclaimed by the collector.
    collected: List[str]
    #: Minimal span records for the clock oracle.
    spans: List[Dict[str, Any]]
    #: key -> {"acked": n, "ambiguous": n, "shed": n} per shard key
    #: (shards mode; same envelope semantics as ``counters``).
    shard_writes: Dict[str, Dict[str, int]] = field(default_factory=dict)
    shard_final: Dict[str, Optional[int]] = field(default_factory=dict)
    #: The shard fences' write-execution log: one entry per dispatched
    #: non-readonly shard invocation — {inv_id, op, shard, node, owner,
    #: epoch} — the ``shard_routing`` oracle's evidence.
    shard_log: List[Dict[str, Any]] = field(default_factory=list)
    #: The caching client's read evidence (leases mode): every cached or
    #: fetched read as {t, iid, op, tag, values, via} — what the
    #: ``staleness_bound`` oracle audits.
    lease_reads: List[Dict[str, Any]] = field(default_factory=list)
    #: key -> ordered [(value, t_ack, acked)] group-write ledger with
    #: client-observed ack times (leases mode).
    lease_writes: Dict[str, List[Tuple[str, float, bool]]] = \
        field(default_factory=dict)
    #: The deadline gates' execution logs (overload mode): every
    #: dispatched execution with the deadline it carried and the node
    #: it ran on — the ``overload_safety`` oracle's no-execution-past-
    #: deadline evidence.
    overload_executions: List[Dict[str, Any]] = field(default_factory=list)
    #: node -> ordered [(t, priority, verdict)] admission event log
    #: (overload mode) — the no-priority-inversion evidence.
    overload_admission: Dict[str, List[Tuple[float, int, str]]] = \
        field(default_factory=dict)
    #: "node:protocol" -> retry-budget stats from the client registry,
    #: snapshotted before the out-of-band final reads — the
    #: retry-volume-within-budget evidence.
    overload_budgets: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: (ratio, cap) the client's budgets ran under.
    overload_budget_params: Tuple[float, float] = (0.1, 10.0)
    violations: list = field(default_factory=list)


class _PlanAbort(Exception):
    """Deliberate client-side abort injected by ``cancel_transfer``."""


def _apply_mutations(names) -> List[Tuple[type, str, bool]]:
    applied = []
    for name in names:
        cls, attr = MUTATIONS[name]
        applied.append((cls, attr, getattr(cls, attr)))
        setattr(cls, attr, True)
    return applied


def _revert_mutations(applied) -> None:
    for cls, attr, prior in applied:
        setattr(cls, attr, prior)


class _Run:
    """One in-flight execution of a plan (all the mutable bookkeeping)."""

    def __init__(self, plan: Plan, config: CheckConfig) -> None:
        self.plan = plan
        self.config = config
        self.history = History()
        self.world = World(seed=plan.seed)
        self.domain = self.world.domain(_DOMAIN)
        for node in SERVER_NODES:
            self.world.node(_DOMAIN, node)
        self.world.node(_DOMAIN, CLIENT_NODE)
        self.srv = {node: self.world.capsule(node, "srv")
                    for node in SERVER_NODES}
        self.app = self.world.capsule(CLIENT_NODE, "app")
        self.binder = self.world.binder_for(self.app)
        self.qos = QoS(deadline_ms=config.deadline_ms,
                       retries=config.retries)

        self.locations: Dict[str, str] = {}
        self.proxies: Dict[str, Any] = {}
        self.collected: set = set()
        self.counters: Dict[str, Dict[str, int]] = {}
        self.accounts_model: Dict[str, int] = {}
        self.had_indoubt = False
        self.indoubt_allowance = 0
        self.indoubt_txs: list = []
        self.group_writes: Dict[str, List[Tuple[str, bool]]] = {}
        self.gc_observations: List[Dict[str, Any]] = []

        for i in range(config.counters):
            self._place(f"c{i}", Counter(),
                        EnvironmentConstraints())
            self.counters[f"c{i}"] = {"acked": 0, "ambiguous": 0,
                                      "shed": 0}
        for i in range(config.accounts):
            self._place(f"a{i}", Account(config.initial_balance),
                        EnvironmentConstraints(concurrency=True))
            self.accounts_model[f"a{i}"] = config.initial_balance

        spec = ReplicationSpec(replicas=config.group_size,
                               policy="active",
                               reply_quorum=config.reply_quorum)
        self.group, gref = self.domain.groups.create(
            KvStore, [self.srv[node] for node in SERVER_NODES],
            spec, group_id="check.kv")
        self.gproxy = self.binder.bind(gref, qos=self.qos)

        self.space = None
        self.shard_writes: Dict[str, Dict[str, int]] = {}
        if config.shards:
            self.space = self.domain.shards.create(
                "check.grid", ShardStore,
                [self.srv[node] for node in SERVER_NODES],
                shards=config.shard_count)
            self.space.record_executions = True
            self.sproxy = self.space.bind(self.app, qos=self.qos)

        self.supervisor = None
        if config.supervisor:
            self.supervisor = self.domain.supervisor
            self.supervisor.start()

        self.lease_client = None
        self.lease_writes: Dict[str, List[Tuple[str, float, bool]]] = {}
        if config.leases:
            authority = self.domain.leases
            authority.default_ttl_ms = config.lease_ttl_ms
            authority.register("check.kv", ttl_ms=config.lease_ttl_ms)
            self.lease_client = authority.attach_client(self.app.nucleus)
            self.lease_client.record_reads = True
            # Reads the cache misses are spread over the live replicas
            # (bounded-staleness follower reads) instead of always
            # hitting the sequencer.
            for layer in self.gproxy._channel.layers:
                if getattr(layer, "name", "") == "replication":
                    layer.follower_reads = True

        self.batcher = None
        if config.batching:
            from repro.perf import AdmissionController, BatchClient, \
                BatchPolicy
            # Sized against the plan shape: ~12 tokens refill per
            # op-budget slot, burst below the largest generated burst,
            # bound low enough that back-to-back bursts shed — the shed
            # path must actually run, or its oracle handling is vacuous.
            for node in SERVER_NODES:
                nucleus = self.srv[node].nucleus
                nucleus.admission = AdmissionController(
                    self.world.clock, rate_per_s=500.0, burst=4,
                    max_queue=3)
            self.batcher = BatchClient(
                self.app, BatchPolicy(max_batch=8, linger_ms=0.5),
                qos=self.qos)

        self.overload_controllers: Dict[str, Any] = {}
        if config.overload:
            from repro.overload import BrownoutController, \
                ClassAdmissionController
            # The whole overload stack, end to end: the client stamps
            # deadlines/priorities and enforces retry budgets; every
            # server gets class-aware admission with brownout (sized so
            # stall windows really shed) and records the evidence the
            # overload_safety oracle judges.
            client = self.app.nucleus
            client.deadline_propagation = True
            client.retry_budgets.enabled = True
            # Sized against the plan shape: the refill (~0.6 tokens per
            # op-budget slot) runs *below* a node's typical demand, so
            # deficits really form — queue waits long enough to kill
            # the tight deadline tiers post-queue, class-0/1 sheds when
            # the deficit crosses their bounds, and brownout steps when
            # the waits of admitted work blow the target.
            for node in SERVER_NODES:
                nucleus = self.srv[node].nucleus
                controller = ClassAdmissionController(
                    self.world.clock, rate_per_s=24.0, burst=3,
                    max_queue=8,
                    brownout=BrownoutController(self.world.clock,
                                                target_p99_ms=20.0,
                                                window=16))
                controller.record_events = True
                nucleus.admission = controller
                nucleus.deadline_gate.record_executions = True
                self.overload_controllers[node] = controller

        self.schedule = FaultSchedule(*plan.windows)
        if plan.windows:
            self.world.apply_chaos(self.schedule)
            self.schedule.install(self.world.scheduler, self.world.faults)

    def _place(self, name: str, implementation, constraints) -> None:
        node = SERVER_NODES[len(self.locations) % len(SERVER_NODES)]
        ref = self.srv[node].export(implementation,
                                    constraints=constraints,
                                    interface_id=f"check.{name}")
        self.locations[name] = node
        self.proxies[name] = self.binder.bind(ref, qos=self.qos)

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _attempt(fn, *args, **kwargs) -> Tuple[str, Any]:
        """Run a proxy call; fold every outcome into (label, value)."""
        try:
            return "ok", fn(*args, **kwargs)
        except Signal as exc:
            return f"signal:{exc.name}", None
        except OdpError as exc:
            return f"failed:{type(exc).__name__}", None

    def _counter_name(self, op) -> str:
        return f"c{op.get('counter', 0) % self.config.counters}"

    def _object_name(self, op) -> Optional[str]:
        name = op.get("obj")
        if name in self.locations:
            return name
        return None

    # -- op execution --------------------------------------------------------

    def execute(self, index: int, op) -> None:
        t0 = self.world.now
        handler = getattr(self, f"_op_{op.kind}")
        outcome, detail = handler(op)
        self.history.record(index, repr(op), outcome, detail,
                            t0, self.world.now)

    def _op_invoke(self, op):
        name = self._counter_name(op)
        outcome, value = self._attempt(self.proxies[name].increment)
        self._count_increment(name, outcome)
        return outcome, value

    def _op_prio_invoke(self, op):
        """``n`` back-to-back increments carrying an explicit priority
        class and a tight propagated-deadline tier (overload mode;
        under the default config they degrade to plain increments so
        pinned overload plans still run everywhere).  The burst is the
        point: back-to-back arrivals outrun the admission refill, so
        the op itself builds the deficit that sheds its low classes
        and kills its tight deadlines in the queue."""
        name = self._counter_name(op)
        n = max(1, int(op.get("n", 1)))
        if not self.config.overload:
            outcomes = []
            for _ in range(n):
                outcome, _value = self._attempt(
                    self.proxies[name].increment)
                self._count_increment(name, outcome)
                outcomes.append(outcome)
        else:
            tiers = self.config.overload_tiers
            tier = tiers[op.get("tier", 0) % len(tiers)]
            prio = int(op.get("prio", 2)) % 4
            qos = QoS(deadline_ms=tier, retries=self.config.retries,
                      priority=prio)
            outcomes = []
            for _ in range(n):
                outcome, _value = self._attempt(
                    self.proxies[name].increment, _qos=qos)
                self._count_increment(name, outcome)
                outcomes.append(outcome)
        summary = {}
        for outcome in outcomes:
            summary[outcome] = summary.get(outcome, 0) + 1
        label = ",".join(f"{key}x{summary[key]}"
                         for key in sorted(summary))
        return ("ok" if set(outcomes) == {"ok"} else "mixed"), label

    def _count_increment(self, name: str, outcome: str) -> None:
        if outcome == "ok":
            self.counters[name]["acked"] += 1
        elif outcome == "failed:ServerBusyError":
            # The shed contract: a ServerBusyError surfacing to the
            # caller means the final attempt was rejected *before*
            # dispatch and the earlier ones definitely did not execute
            # either (an executed attempt is answered from the reply
            # cache, never shed).  Unacked, not ambiguous.
            self.counters[name]["shed"] += 1
        elif outcome == "failed:InvocationExpiredError":
            # Expired at a deadline gate.  Usually definitely-not-
            # executed, but a retransmission whose original executed
            # (reply lost, cached reply already expiry-evicted) also
            # surfaces this — so it stays inside the ambiguous bound,
            # tracked separately for the overload report.
            self.counters[name]["ambiguous"] += 1
            self.counters[name]["expired"] = \
                self.counters[name].get("expired", 0) + 1
        else:
            # Anything else is ambiguous: the increment may or may not
            # have executed before the failure (0-or-1 bound).
            self.counters[name]["ambiguous"] += 1

    def _op_batch_burst(self, op):
        """n concurrent increments of one counter, coalesced when the
        batch client is on (default config: a plain serial burst, so
        pinned batching plans still run everywhere)."""
        name = self._counter_name(op)
        n = max(2, int(op.get("n", 2)))
        if self.batcher is None:
            outcomes = []
            for _ in range(n):
                outcome, _value = self._attempt(
                    self.proxies[name].increment)
                self._count_increment(name, outcome)
                outcomes.append(outcome)
        else:
            ref = self.proxies[name]._ref
            futures = [self.batcher.call(ref, "increment")
                       for _ in range(n)]
            # Let the linger timer fire (size-triggered flushes have
            # already gone out), then fold each member's outcome.
            self.world.scheduler.run_until(
                self.world.now + self.batcher.policy.linger_ms + 0.01)
            self.batcher.flush()
            outcomes = []
            for future in futures:
                outcome, _value = self._attempt(future.result)
                self._count_increment(name, outcome)
                outcomes.append(outcome)
        summary = {}
        for outcome in outcomes:
            summary[outcome] = summary.get(outcome, 0) + 1
        label = ",".join(f"{key}x{summary[key]}"
                         for key in sorted(summary))
        return ("ok" if set(outcomes) == {"ok"} else "mixed"), label

    def _op_read(self, op):
        name = self._counter_name(op)
        return self._attempt(self.proxies[name].read)

    def _op_transfer(self, op, cancel: bool = False):
        config = self.config
        src = f"a{op.get('src', 0) % config.accounts}"
        dst = f"a{op.get('dst', 1) % config.accounts}"
        if src == dst:
            return "noop", None
        amount = int(op.get("amount", 1))
        manager = self.domain.tx_manager
        tx = manager.begin()
        label = None
        try:
            with tx:
                self.proxies[src].withdraw(amount)
                self.proxies[dst].deposit(amount)
                if cancel:
                    raise _PlanAbort()
        except _PlanAbort:
            label = "cancelled"
        except Signal as exc:
            label = f"signal:{exc.name}"
        except OdpError as exc:
            label = f"failed:{type(exc).__name__}"
        if tx.state == TxState.COMMITTED:
            self.accounts_model[src] -= amount
            self.accounts_model[dst] += amount
            outcome = "committed"
        else:
            outcome = "aborted"
        if tx.indoubt:
            self.had_indoubt = True
            self.indoubt_allowance += amount * len(tx.indoubt)
            self.indoubt_txs.append(tx)
            outcome += f"+indoubt:{len(tx.indoubt)}"
        return outcome, label

    def _op_cancel_transfer(self, op):
        return self._op_transfer(op, cancel=True)

    def _op_group_put(self, op):
        key = str(op.get("key", "k0"))
        value = str(op.get("value", ""))
        outcome, _ = self._attempt(self.gproxy.put, key, value)
        self.group_writes.setdefault(key, []).append(
            (value, outcome == "ok"))
        if self.config.leases:
            # The staleness oracle needs *when* the client learned the
            # write's fate, not just whether: record the ack time (at or
            # after the commit, so the bound judged from it is
            # conservative).
            self.lease_writes.setdefault(key, []).append(
                (value, round(self.world.now, 6), outcome == "ok"))
        return outcome, None

    def _op_group_get(self, op):
        key = str(op.get("key", "k0"))
        return self._attempt(self.gproxy.get, key)

    def _op_group_revive(self, op):
        members = self.group.view.members
        member = members[op.get("member", 0) % len(members)]
        if member.alive:
            return "noop", member.index
        if self.world.faults.is_crashed(member.node):
            return "skipped:crashed", member.index
        try:
            self.domain.groups.revive("check.kv", member.index)
            return "ok", member.index
        except OdpError as exc:
            return f"failed:{type(exc).__name__}", member.index

    def _op_relocate(self, op):
        name = self._object_name(op)
        if name is None:
            return "noop", None
        if name in self.collected:
            return "skipped:collected", name
        target = op.get("to")
        if target not in SERVER_NODES:
            return "noop", name
        current = self.locations[name]
        if target == current:
            return "noop", name
        faults = self.world.faults
        if faults.is_crashed(current) or faults.is_crashed(target):
            return "skipped:crashed", name
        interface = self.srv[current].interfaces.get(f"check.{name}")
        if interface is None or interface.state != InterfaceState.ACTIVE:
            return "skipped:not-active", name
        try:
            self.domain.migrator.migrate(self.srv[current],
                                         f"check.{name}",
                                         self.srv[target])
        except OdpError as exc:
            return f"failed:{type(exc).__name__}", name
        self.locations[name] = target
        return "ok", f"{name}:{current}->{target}"

    def _op_passivate(self, op):
        name = self._object_name(op)
        if name is None:
            return "noop", None
        if name in self.collected:
            return "skipped:collected", name
        node = self.locations[name]
        if self.world.faults.is_crashed(node):
            return "skipped:crashed", name
        interface = self.srv[node].interfaces.get(f"check.{name}")
        if interface is None or interface.state != InterfaceState.ACTIVE:
            return "noop", name
        try:
            self.domain.passivation.passivate(self.srv[node],
                                              f"check.{name}")
        except OdpError as exc:
            return f"failed:{type(exc).__name__}", name
        return "ok", name

    def _op_gc_sweep(self, op):
        collector = self.domain.collector
        now = self.world.now
        pre: Dict[str, Tuple[str, bool]] = {}
        for capsule in self.srv.values():
            for iid, interface in capsule.interfaces.items():
                pre[iid] = (interface.state.value,
                            collector.leases.has_live_lease(iid, now))
        report = collector.sweep()
        for iid in report.collected:
            state, lease = pre.get(iid, ("unknown", False))
            self.gc_observations.append(
                {"iid": iid, "state": state, "live_lease": lease})
            if iid.startswith("check.") and iid.count(".") == 1:
                self.collected.add(iid.split(".", 1)[1])
        return "ok", {"collected": sorted(report.collected),
                      "examined": report.examined}

    def _advance(self, ms: float) -> None:
        """Advance virtual time between ops.  With the supervisor on,
        run the event loop (heartbeats and supervision ticks must fire);
        otherwise a plain clock jump, byte-identical to the original."""
        if ms <= 0:
            return
        if self.supervisor is not None:
            self.world.scheduler.run_until(self.world.now + ms)
        else:
            self.world.clock.advance(ms)

    def _op_advance(self, op):
        ms = float(op.get("ms", 1.0))
        self._advance(ms)
        self.world.faults.pump()
        return "ok", round(ms, 3)

    def _op_lose_reply(self, op):
        node = op.get("node")
        if node not in SERVER_NODES:
            return "noop", None
        self.world.faults.lose_next(node, CLIENT_NODE)
        return "ok", node

    def _op_cached_get(self, op):
        if self.lease_client is None:
            return "noop", None
        key = str(op.get("key", "k0"))
        return self._attempt(self.gproxy.get, key)

    def _op_cached_burst(self, op):
        """n back-to-back reads of one key: after the first miss fills
        the cache, the rest are the grant-renewing hit hot path."""
        if self.lease_client is None:
            return "noop", None
        key = str(op.get("key", "k0"))
        n = max(2, int(op.get("n", 2)))
        outcomes = []
        for _ in range(n):
            outcome, _value = self._attempt(self.gproxy.get, key)
            outcomes.append(outcome)
        summary = {}
        for outcome in outcomes:
            summary[outcome] = summary.get(outcome, 0) + 1
        label = ",".join(f"{key_}x{summary[key_]}"
                         for key_ in sorted(summary))
        return ("ok" if set(outcomes) == {"ok"} else "mixed"), label

    def _op_shard_incr(self, op):
        if self.space is None:
            return "noop", None
        key = str(op.get("key", "s0"))
        outcome, value = self._attempt(self.sproxy.incr, key)
        entry = self.shard_writes.setdefault(
            key, {"acked": 0, "ambiguous": 0, "shed": 0})
        if outcome == "ok":
            entry["acked"] += 1
        elif outcome == "failed:ServerBusyError":
            entry["shed"] += 1
        else:
            entry["ambiguous"] += 1
        return outcome, value

    def _op_shard_get(self, op):
        if self.space is None:
            return "noop", None
        return self._attempt(self.sproxy.get, str(op.get("key", "s0")))

    def _op_shard_move(self, op):
        """Toggle a node's ring membership: drain it (staged, fenced
        migrations of every shard it owns) or re-admit it.  Moves need
        live source and target capsules, so the whole-fleet crash guard
        keeps the op deterministic rather than half-draining."""
        if self.space is None:
            return "noop", None
        node = op.get("node")
        if node not in SERVER_NODES:
            return "noop", None
        faults = self.world.faults
        if any(faults.is_crashed(n) for n in SERVER_NODES):
            return "skipped:crashed", node
        on_ring = node in self.space.ring.nodes()
        try:
            if on_ring:
                if len(self.space.ring.nodes()) <= 1:
                    return "noop", node
                moves = self.space.rebalancer.node_left(node)
                return "ok", f"leave:{node}:{len(moves)}"
            moves = self.space.rebalancer.node_joined(self.srv[node])
            return "ok", f"join:{node}:{len(moves)}"
        except OdpError as exc:
            return f"failed:{type(exc).__name__}", node

    # -- epilogue ------------------------------------------------------------

    def heal(self) -> None:
        """End of scenario: cross every window boundary, then force a
        fully-healed network so final observations are honest.

        With the supervisor on, the event loop first runs through the
        chaos horizon plus a grace period so repairs happen through the
        platform's own detect->diagnose->repair loop (restarted nodes
        heartbeat again, revives and replacements land) — then the
        supervisor is stopped before settling, since its recurring
        events would otherwise keep the scheduler busy forever.
        """
        faults = self.world.faults
        faults.clear_lose_next()
        if self.supervisor is not None:
            grace = self.config.supervisor_grace_ms
            horizon = self.world.now
            for window in self.plan.windows:
                for edge in (getattr(window, "start_ms", None),
                             getattr(window, "end_ms", None)):
                    if edge is not None:
                        horizon = max(horizon, float(edge))
            self.world.scheduler.run_until(horizon + grace)
            faults.pump()
            self._force_heal(faults)
            self.world.scheduler.run_until(self.world.now + grace)
            self.supervisor.stop()
        self.world.settle()
        faults.pump()
        self._force_heal(faults)

    def _force_heal(self, faults) -> None:
        for node in sorted(faults.crashed_nodes):
            faults.restart_node(node)
        faults.heal_partition()
        faults.drop_probability = 0.0
        for a in _ALL_NODES:
            for b in _ALL_NODES:
                if a == b:
                    continue
                faults.heal_link(a, b)
                faults.clear_link_drop(a, b)
                faults.restore_link(a, b)

    def resolve_indoubt(self) -> List[str]:
        manager = self.domain.tx_manager
        unresolved: List[str] = []
        for tx in self.indoubt_txs:
            manager.resolve_indoubt(tx)
            unresolved.extend(p.interface_id for p in tx.indoubt)
        return sorted(set(unresolved))

    def finish(self) -> RunResult:
        if self.lease_client is not None:
            # Final observations must come from the servers, not from a
            # cache whose staleness window is still open — and the
            # group_consistency oracle compares them against the ledger.
            self.lease_client.enabled = False
        self.heal()
        overload_executions: List[Dict[str, Any]] = []
        overload_admission: Dict[str, List[Tuple[float, int, str]]] = {}
        overload_budgets: Dict[str, Dict[str, Any]] = {}
        if self.config.overload:
            # Snapshot the oracle evidence *before* the out-of-band
            # final reads below: those audits are not client traffic
            # and must neither appear in the budget ledger the volume
            # clause judges nor be shed by a still-elevated brownout.
            registry = self.app.nucleus.retry_budgets
            overload_budgets = registry.snapshot()
            registry.enabled = False
            for node in SERVER_NODES:
                gate = self.srv[node].nucleus.deadline_gate
                for entry in gate.execution_log:
                    overload_executions.append(dict(entry, node=node))
                controller = self.overload_controllers[node]
                overload_admission[node] = list(controller.events)
                if controller.brownout is not None:
                    controller.brownout.level = 0
        unresolved = self.resolve_indoubt()
        final_qos = QoS(deadline_ms=None, retries=10)

        counter_final: Dict[str, Optional[int]] = {}
        for name in self.counters:
            _, value = self._attempt(self.proxies[name].read,
                                     _qos=final_qos)
            counter_final[name] = value
        accounts_final: Dict[str, Optional[int]] = {}
        for name in self.accounts_model:
            _, value = self._attempt(self.proxies[name].balance_of,
                                     _qos=final_qos)
            accounts_final[name] = value

        shard_final: Dict[str, Optional[int]] = {}
        if self.space is not None:
            for key in sorted(self.shard_writes):
                _, value = self._attempt(self.sproxy.get, key,
                                         _qos=final_qos)
                shard_final[key] = value

        group_final: Dict[str, Optional[str]] = {}
        for key in sorted(self.group_writes):
            _, value = self._attempt(self.gproxy.get, key,
                                     _qos=final_qos)
            group_final[key] = value

        member_states: List[Dict[str, Any]] = []
        plumbing = self.domain.groups._plumbing
        for member in self.group.view.members:
            _, interface = plumbing[("check.kv", member.index)]
            implementation = interface.implementation
            state = {
                "index": member.index,
                "node": member.node,
                "alive": member.alive,
                "out_of_sync": bool(member.layer.out_of_sync),
                "applied_seq": member.applied_seq,
                "data": (dict(sorted(implementation.data.items()))
                         if implementation is not None else None),
            }
            if self.config.partitions:
                # The per-member commit ledger feeds the split_brain
                # oracle.  Only recorded in partitions mode so default
                # end states (and digests) are untouched.
                state["commits"] = [list(entry)
                                    for entry in member.layer.commit_log]
            member_states.append(state)

        relocation_probes: List[Dict[str, Any]] = []
        relocator = self.domain.relocator
        finals = dict(counter_final)
        finals.update(accounts_final)
        for name in sorted(self.locations):
            if name in self.collected:
                continue
            ref = relocator.try_lookup(f"check.{name}")
            resolved = (ref.paths[0].node
                        if ref is not None and ref.paths else None)
            relocation_probes.append({
                "obj": name,
                "expected_node": self.locations[name],
                "resolved_node": resolved,
                "final_ok": finals.get(name) is not None,
            })

        spans = [{"id": span.span_id,
                  "parent": span.parent_span_id,
                  "start": span.start_ms,
                  "end": span.end_ms}
                 for span in self.domain.tracer.spans()]

        end_state = {
            "counters": counter_final,
            "accounts": accounts_final,
            "group": group_final,
            "members": member_states,
            "collected": sorted(self.collected),
            "locations": dict(sorted(self.locations.items())),
            "clock_ms": round(self.world.now, 3),
            "messages": self.world.network.total_messages,
            "drops": self.world.faults.drops,
            "spans": len(spans),
        }
        if self.space is not None:
            report = self.space.report()
            end_state["shard"] = {
                "final": shard_final,
                "epoch": report["epoch"],
                "per_node": report["per_node"],
                "migrations": report["migrations"],
                "recoveries": report["recoveries"],
                "fenced_rejections": report["fenced_rejections"],
                "stale_hits": report["stale_hits"],
                "chases": report["chases"],
            }
        if self.lease_client is not None:
            end_state["lease"] = {
                "authority": self.domain.leases.report(),
                "client": self.lease_client.stats(),
                "reads": len(self.lease_client.read_log),
            }
        if self.supervisor is not None:
            end_state["heal"] = self.supervisor.report()
        if self.config.partitions:
            end_state["partitions"] = dict(
                self.domain.groups.partition_stats())
        if self.batcher is not None:
            end_state["perf"] = {
                "batcher": self.batcher.stats(),
                "admission": {
                    node: self.srv[node].nucleus.admission.stats()
                    for node in SERVER_NODES},
            }
        if self.config.overload:
            end_state["overload"] = {
                "admission": {
                    node: self.overload_controllers[node].class_stats()
                    for node in SERVER_NODES},
                "gates": {
                    node: self.srv[node].nucleus.deadline_gate.stats()
                    for node in SERVER_NODES},
                "budgets": self.app.nucleus.retry_budgets.totals(),
                "executions": len(overload_executions),
            }
        digest = digest_run(repr(self.plan), self.history.events,
                            end_state)
        return RunResult(
            plan=self.plan, config=self.config,
            events=self.history.events, end_state=end_state,
            digest=digest,
            counters=self.counters, counter_final=counter_final,
            accounts_model=self.accounts_model,
            accounts_final=accounts_final,
            had_indoubt=self.had_indoubt,
            indoubt_allowance=self.indoubt_allowance,
            unresolved_iids=unresolved,
            group_writes=self.group_writes, group_final=group_final,
            member_states=member_states,
            relocation_probes=relocation_probes,
            gc_observations=self.gc_observations,
            collected=sorted(self.collected),
            spans=spans,
            shard_writes=self.shard_writes,
            shard_final=shard_final,
            shard_log=(list(self.space.execution_log)
                       if self.space is not None else []),
            lease_reads=(list(self.lease_client.read_log)
                         if self.lease_client is not None else []),
            lease_writes=self.lease_writes,
            overload_executions=overload_executions,
            overload_admission=overload_admission,
            overload_budgets=overload_budgets,
            overload_budget_params=(
                self.app.nucleus.retry_budgets.ratio,
                self.app.nucleus.retry_budgets.cap),
        )


def run_plan(plan: Plan, config: Optional[CheckConfig] = None
             ) -> RunResult:
    """Execute *plan* on a fresh world and return the recorded run."""
    config = config or CheckConfig()
    applied = _apply_mutations(config.mutations)
    try:
        run = _Run(plan, config)
        for index, op in enumerate(plan.ops):
            run._advance(config.op_budget_ms)
            run.world.faults.pump()
            run.execute(index, op)
        return run.finish()
    finally:
        _revert_mutations(applied)


def run_seed(seed: int, config: Optional[CheckConfig] = None
             ) -> RunResult:
    """Generate the plan for *seed*, run it, and judge it."""
    from repro.check import oracles

    config = config or CheckConfig()
    plan = generate_plan(seed, config)
    result = run_plan(plan, config)
    result.violations = oracles.run_all(result)
    return result
