"""Run histories: what happened, as comparable data.

The explorer records one event per plan operation plus an end-of-run
state snapshot; a :class:`History` turns that into a stable digest so
"same seed, same run" is a checkable claim rather than a hope.  The
digest hashes a canonical JSON rendering (sorted keys, ``repr`` for
anything non-primitive), so any nondeterminism — an unsorted set, a
wall-clock timestamp, an id-dependent ordering — changes the digest
and fails the determinism check loudly.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List


class History:
    """The ordered record of one explorer run."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def record(self, index: int, op_repr: str, outcome: str,
               detail: Any, t0: float, t1: float) -> None:
        self.events.append({
            "i": index,
            "op": op_repr,
            "outcome": outcome,
            "detail": detail,
            "t0": round(t0, 3),
            "t1": round(t1, 3),
        })

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


def canonical_json(payload: Any) -> str:
    """Deterministic rendering: sorted keys, repr for exotic values."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=repr)


def digest_run(plan_repr: str, events: List[Dict[str, Any]],
               end_state: Dict[str, Any]) -> str:
    """One hex digest naming this exact run of this exact plan."""
    blob = canonical_json({
        "plan": plan_repr,
        "events": events,
        "end_state": end_state,
    })
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
