"""``python -m repro.check`` — seed-sweep CLI for the simulation tester.

Runs N seeds through the chaos explorer, judges every run with the
oracle catalogue, re-runs the first seed to prove determinism, and
(optionally) shrinks the first failing plan into a reproduction
script.  Exit status 0 means every seed passed every oracle and the
determinism self-check held.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.check.explorer import MUTATIONS, CheckConfig, run_seed
from repro.check.oracles import ORACLES
from repro.check.plan import generate_plan
from repro.check.shrink import repro_snippet, shrink


def _parse(argv: Optional[List[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="deterministic chaos exploration of the ODP "
                    "platform (seeds -> plans -> oracles)")
    parser.add_argument("--seeds", type=int, default=20,
                        help="number of seeds to explore (default 20)")
    parser.add_argument("--base-seed", type=int, default=0,
                        help="first seed of the sweep (default 0)")
    parser.add_argument("--ops", type=int, default=None,
                        help="operations per plan (default %d)"
                             % CheckConfig.ops)
    parser.add_argument("--mutate", action="append", default=[],
                        choices=sorted(MUTATIONS),
                        help="enable a platform mutation (repeatable); "
                             "the matching oracle is expected to fire")
    parser.add_argument("--supervisor", action="store_true",
                        help="run the self-healing supervisor "
                             "(repro.heal) during every plan; the "
                             "self_heal oracle then requires groups to "
                             "regain full replication factor")
    parser.add_argument("--partitions", action="store_true",
                        help="widen chaos with symmetric and asymmetric "
                             "network partition windows and record "
                             "per-member commit ledgers; the "
                             "split_brain oracle then checks no write "
                             "ever commits without quorum and no two "
                             "members diverge at a sequence number")
    parser.add_argument("--batching", action="store_true",
                        help="drive part of the workload through the "
                             "high-throughput layer (repro.perf): "
                             "batch_burst ops via a BatchClient, with "
                             "token-bucket admission control shedding "
                             "overload on every server")
    parser.add_argument("--shards", action="store_true",
                        help="stand up a sharded object space "
                             "(repro.shard) over the server nodes: "
                             "keyed ops route through the consistent-"
                             "hash ring, shard_move ops drain/re-admit "
                             "nodes mid-traffic; the shard_routing "
                             "oracle then requires every write to "
                             "execute on the epoch-current owner "
                             "exactly once")
    parser.add_argument("--leases", action="store_true",
                        help="promote the replicated kv interface to "
                             "cached mode (repro.lease): read-heavy "
                             "cached_get/cached_burst ops run through "
                             "a lease-caching client with follower "
                             "reads; the staleness_bound oracle then "
                             "requires no cached read to be staler "
                             "than the lease TTL or out of order")
    parser.add_argument("--overload", action="store_true",
                        help="run the overload-robustness stack "
                             "(repro.overload): the client propagates "
                             "deadlines and priorities end to end and "
                             "enforces retry budgets, servers shed "
                             "class-aware with brownout, and plans "
                             "gain prioritized tight-deadline ops plus "
                             "compute-stall windows; the "
                             "overload_safety oracle then requires "
                             "that expired work never executes, retry "
                             "volume stays within budget, and shedding "
                             "never inverts priority")
    parser.add_argument("--min-seeds-hour", type=float, default=None,
                        metavar="RATE",
                        help="fail the run if the sweep throughput "
                             "falls below RATE seeds/hour (CI perf "
                             "floor; the timer covers the sweep loop "
                             "only)")
    parser.add_argument("--shrink", action="store_true",
                        help="shrink the first failing plan and print "
                             "a reproduction script")
    parser.add_argument("--verbose", action="store_true",
                        help="print every event of failing runs")
    return parser.parse_args(argv)


def main(argv: Optional[List[str]] = None) -> int:
    args = _parse(argv)
    config = CheckConfig()
    if args.ops is not None:
        config = CheckConfig(ops=args.ops)
    if args.mutate:
        config = config.with_mutations(*args.mutate)
    if args.supervisor:
        config = config.with_supervisor()
    if args.batching:
        config = config.with_batching()
    if args.partitions:
        config = config.with_partitions()
    if args.shards:
        config = config.with_shards()
    if args.leases:
        config = config.with_leases()
    if args.overload:
        config = config.with_overload()

    print(f"repro.check: {args.seeds} seeds from {args.base_seed}, "
          f"{config.ops} ops/plan, mutations="
          f"{list(config.mutations) or 'none'}, "
          f"supervisor={'on' if config.supervisor else 'off'}, "
          f"batching={'on' if config.batching else 'off'}, "
          f"partitions={'on' if config.partitions else 'off'}, "
          f"shards={'on' if config.shards else 'off'}, "
          f"leases={'on' if config.leases else 'off'}, "
          f"overload={'on' if config.overload else 'off'}")

    started = time.monotonic()
    per_oracle = {name: 0 for name in ORACLES}
    failing_seeds: List[int] = []
    results = {}
    for seed in range(args.base_seed, args.base_seed + args.seeds):
        result = run_seed(seed, config)
        results[seed] = result
        if result.violations:
            failing_seeds.append(seed)
            for violation in result.violations:
                per_oracle[violation.oracle] = \
                    per_oracle.get(violation.oracle, 0) + 1
            print(f"  seed {seed}: {len(result.violations)} "
                  f"violation(s)  digest {result.digest[:12]}")
            for violation in result.violations:
                print(f"    {violation}")
            if args.verbose:
                for event in result.events:
                    print(f"      {event}")
        else:
            print(f"  seed {seed}: ok  {len(result.events)} events  "
                  f"digest {result.digest[:12]}")
    elapsed = time.monotonic() - started

    print("\noracle summary:")
    width = max(len(name) for name in per_oracle)
    for name, count in per_oracle.items():
        print(f"  {name:<{width}}  {count} violation(s)")

    first = args.base_seed
    rerun = run_seed(first, config)
    deterministic = rerun.digest == results[first].digest
    print(f"\ndeterminism: seed {first} re-run digest "
          + ("matches" if deterministic else
             f"DIFFERS ({rerun.digest[:12]} != "
             f"{results[first].digest[:12]}")
          + f" ({rerun.digest[:12]})")

    rate = args.seeds / elapsed * 3600.0 if elapsed > 0 else 0.0
    print(f"{args.seeds - len(failing_seeds)}/{args.seeds} seeds clean "
          f"in {elapsed:.1f}s ({rate:.0f} seeds/hour)")
    rate_ok = True
    if args.min_seeds_hour is not None and rate < args.min_seeds_hour:
        rate_ok = False
        print(f"throughput floor missed: {rate:.0f} < "
              f"{args.min_seeds_hour:.0f} seeds/hour")

    if failing_seeds and args.shrink:
        seed = failing_seeds[0]
        print(f"\nshrinking seed {seed}...")
        report = shrink(generate_plan(seed, config), config)
        print(f"  {report.summary()}")
        print("\n# --- reproduction script "
              "---------------------------------------")
        print(repro_snippet(report.plan, config))

    return 0 if deterministic and rate_ok and not failing_seeds else 1


if __name__ == "__main__":
    sys.exit(main())
