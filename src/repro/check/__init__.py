"""Deterministic simulation testing for the ODP platform.

FoundationDB-style checking on top of the simulated world: a single
integer seed deterministically generates a randomized *plan* of client
operations interleaved with declarative chaos windows; the plan runs
on a fresh :class:`~repro.runtime.World`; a library of invariant
*oracles* judges the recorded run; and failing plans are minimized by
a ddmin *shrinker* into copy-pasteable reproduction scripts.

Entry points:

* ``python -m repro.check --seeds N`` — explore N seeds and report
  per-oracle results (see :mod:`repro.check.__main__`);
* :func:`run_seed` / :func:`run_plan` — programmatic exploration;
* :func:`shrink` / :func:`repro_snippet` — counterexample reduction.

Determinism contract: same seed, same config => byte-identical event
history and end-state digest.  The harness checks this about itself on
every CLI run.
"""

from repro.check.explorer import (
    MUTATIONS,
    CheckConfig,
    RunResult,
    run_plan,
    run_seed,
)
from repro.check.history import History, digest_run
from repro.check.oracles import ORACLES, Violation, run_all
from repro.check.plan import (
    CLIENT_NODE,
    OP_KINDS,
    SERVER_NODES,
    Op,
    Plan,
    generate_plan,
)
from repro.check.shrink import (
    Shrinker,
    ShrinkReport,
    judge,
    repro_snippet,
    shrink,
)
from repro.check.workload import Account, Counter, KvStore

__all__ = [
    "MUTATIONS",
    "CheckConfig",
    "RunResult",
    "run_plan",
    "run_seed",
    "History",
    "digest_run",
    "ORACLES",
    "Violation",
    "run_all",
    "CLIENT_NODE",
    "OP_KINDS",
    "SERVER_NODES",
    "Op",
    "Plan",
    "generate_plan",
    "Shrinker",
    "ShrinkReport",
    "judge",
    "repro_snippet",
    "shrink",
    "Account",
    "Counter",
    "KvStore",
]
