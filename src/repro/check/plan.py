"""Plans: a randomized run of the whole stack, expressed as data.

A :class:`Plan` is one explorer scenario: the world seed, an ordered
list of client operations (:class:`Op`), and a list of declarative
chaos windows (:class:`~repro.net.fault.FaultSchedule` members).  Plans
are *literal* — ``repr(plan)`` is valid Python that rebuilds the plan —
which is what makes shrunken counterexamples copy-pasteable.

Generation forks dedicated streams from the top-level seed
(``check:plan`` for operations, ``check:chaos`` for windows) so a plan
is a pure function of its seed, independent of every stream the
simulated world itself consumes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.net.fault import (
    AsymPartitionWindow,
    CrashWindow,
    CutWindow,
    FlakyWindow,
    GrayWindow,
    PartitionWindow,
    StallWindow,
)
from repro.sim.rand import DeterministicRandom

#: Fixed explorer topology: three server nodes plus one client node.
SERVER_NODES: Tuple[str, ...] = ("n1", "n2", "n3")
CLIENT_NODE = "cli"

#: Operation kinds a plan may contain (the explorer's op vocabulary).
OP_KINDS = (
    "invoke",           # counter.increment() — non-idempotent
    "read",             # counter.read()
    "transfer",         # transactional withdraw+deposit between accounts
    "cancel_transfer",  # transfer deliberately aborted by the client
    "group_put",        # replicated kv write through the group ref
    "group_get",        # replicated kv read
    "group_revive",     # re-admit a suspected member after node restart
    "relocate",         # migrate an object to another node
    "passivate",        # push an object out to the stable repository
    "gc_sweep",         # run the distributed collector once
    "advance",          # advance the virtual clock (lease/lifecycle time)
    "lose_reply",       # deterministically drop the next reply leg
    "batch_burst",      # n concurrent increments through the batch client
    "shard_incr",       # keyed increment routed through the shard space
    "shard_get",        # keyed read through the shard space
    "shard_move",       # ring membership toggle: drain or re-admit a node
    "cached_get",       # replicated kv read through the lease cache
    "cached_burst",     # n reads of one key — the cache-hit hot path
    "prio_invoke",      # increment with a priority class + tight deadline
)


class Op:
    """One client operation; ``repr`` round-trips as a Python literal."""

    __slots__ = ("kind", "params")

    def __init__(self, kind: str, **params) -> None:
        if kind not in OP_KINDS:
            raise ValueError(f"unknown op kind {kind!r}")
        self.kind = kind
        self.params = dict(params)

    def get(self, key: str, default=None):
        return self.params.get(key, default)

    def __eq__(self, other) -> bool:
        return (isinstance(other, Op) and other.kind == self.kind
                and other.params == self.params)

    def __hash__(self) -> int:
        return hash((self.kind, tuple(sorted(self.params.items()))))

    def __repr__(self) -> str:
        parts = [repr(self.kind)] + [
            f"{key}={self.params[key]!r}" for key in sorted(self.params)]
        return f"Op({', '.join(parts)})"


class Plan:
    """A complete explorer scenario, reproducible from its own repr."""

    __slots__ = ("seed", "ops", "windows")

    def __init__(self, seed: int, ops: Optional[List[Op]] = None,
                 windows: Optional[list] = None) -> None:
        self.seed = seed
        self.ops: List[Op] = list(ops) if ops else []
        self.windows: list = list(windows) if windows else []

    def replace(self, ops=None, windows=None) -> "Plan":
        return Plan(self.seed,
                    self.ops if ops is None else ops,
                    self.windows if windows is None else windows)

    def __eq__(self, other) -> bool:
        return (isinstance(other, Plan) and other.seed == self.seed
                and other.ops == self.ops
                and other.windows == self.windows)

    def __repr__(self) -> str:
        ops = ", ".join(repr(op) for op in self.ops)
        windows = ", ".join(repr(w) for w in self.windows)
        return (f"Plan(seed={self.seed}, ops=[{ops}], "
                f"windows=[{windows}])")

    def summary(self) -> str:
        kinds = {}
        for op in self.ops:
            kinds[op.kind] = kinds.get(op.kind, 0) + 1
        inner = ", ".join(f"{kind}x{count}"
                          for kind, count in sorted(kinds.items()))
        return (f"Plan(seed={self.seed}, {len(self.ops)} ops "
                f"[{inner}], {len(self.windows)} windows)")


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------

#: (kind, weight) — invocation-heavy, with enough lifecycle churn
#: (relocation, passivation, gc, big clock jumps) to stress every layer.
_OP_WEIGHTS = (
    ("invoke", 24),
    ("read", 8),
    ("transfer", 14),
    ("cancel_transfer", 4),
    ("group_put", 12),
    ("group_get", 6),
    ("group_revive", 3),
    ("relocate", 8),
    ("passivate", 5),
    ("gc_sweep", 4),
    ("advance", 8),
    ("lose_reply", 4),
)
#: With batching enabled the table gains bursts of concurrent
#: increments driven through the BatchClient.  A *separate* table, not
#: an extra default row: plan generation is a pure function of
#: (seed, config), and widening the default table would silently change
#: every pinned plan and digest in the regression corpus.
_OP_WEIGHTS_BATCHING = _OP_WEIGHTS + (("batch_burst", 10),)
#: Shard-mode rows, appended *after* any batching row so every existing
#: mode's table (and therefore its pinned plans) stays byte-identical.
_OP_WEIGHTS_SHARDS = (
    ("shard_incr", 16),
    ("shard_get", 6),
    ("shard_move", 5),
)
#: Lease-mode rows, appended after every earlier mode's rows (same
#: strict-append discipline): a read-heavy mix through the caching
#: client so grants renew often enough to keep staleness observable.
_OP_WEIGHTS_LEASES = (
    ("cached_get", 48),
    ("cached_burst", 16),
)
#: Overload-mode row, appended after every earlier mode's rows (same
#: strict-append discipline): prioritized increments whose propagated
#: deadlines are tight enough that chaos windows make expiry real.
_OP_WEIGHTS_OVERLOAD = (
    ("prio_invoke", 22),
)

_KEYS = ("k0", "k1", "k2", "k3", "k4", "k5")
#: Shard-mode keyspace: wide enough to spread over many shards, small
#: enough that most keys see several writes (exercising the per-key
#: exactly-once envelope rather than a sea of one-shot keys).
_SHARD_KEYS = ("s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8",
               "s9")


def _weights_for(config):
    weights = (_OP_WEIGHTS_BATCHING
               if getattr(config, "batching", False) else _OP_WEIGHTS)
    if getattr(config, "shards", False):
        weights = weights + _OP_WEIGHTS_SHARDS
    if getattr(config, "leases", False):
        weights = weights + _OP_WEIGHTS_LEASES
    if getattr(config, "overload", False):
        weights = weights + _OP_WEIGHTS_OVERLOAD
    return weights


def _pick_kind(rng: DeterministicRandom, weights=_OP_WEIGHTS) -> str:
    roll = rng.randint(1, sum(weight for _, weight in weights))
    for kind, weight in weights:
        roll -= weight
        if roll <= 0:
            return kind
    return weights[-1][0]


def _generate_op(rng: DeterministicRandom, config, index: int) -> Op:
    kind = _pick_kind(rng, _weights_for(config))
    if kind == "prio_invoke":
        return Op(kind, counter=rng.randint(0, config.counters - 1),
                  prio=rng.randint(0, 3), tier=rng.randint(0, 2),
                  n=rng.randint(1, 4))
    if kind == "shard_incr" or kind == "shard_get":
        return Op(kind, key=rng.choice(_SHARD_KEYS))
    if kind == "shard_move":
        return Op(kind, node=rng.choice(SERVER_NODES))
    if kind == "cached_get":
        return Op(kind, key=rng.choice(_KEYS))
    if kind == "cached_burst":
        return Op(kind, key=rng.choice(_KEYS), n=rng.randint(3, 8))
    if kind == "batch_burst":
        return Op(kind, counter=rng.randint(0, config.counters - 1),
                  n=rng.randint(2, 10))
    if kind == "invoke" or kind == "read":
        return Op(kind, counter=rng.randint(0, config.counters - 1))
    if kind == "transfer" or kind == "cancel_transfer":
        src = rng.randint(0, config.accounts - 1)
        dst = rng.randint(0, config.accounts - 2)
        if dst >= src:
            dst += 1
        return Op(kind, src=src, dst=dst, amount=rng.randint(1, 60))
    if kind == "group_put":
        return Op(kind, key=rng.choice(_KEYS), value=f"v{index}")
    if kind == "group_get":
        return Op(kind, key=rng.choice(_KEYS))
    if kind == "group_revive":
        return Op(kind, member=rng.randint(0, config.group_size - 1))
    if kind == "relocate":
        objects = ([f"c{i}" for i in range(config.counters)]
                   + [f"a{i}" for i in range(config.accounts)])
        return Op(kind, obj=rng.choice(objects),
                  to=rng.choice(SERVER_NODES))
    if kind == "passivate":
        objects = ([f"c{i}" for i in range(config.counters)]
                   + [f"a{i}" for i in range(config.accounts)])
        return Op(kind, obj=rng.choice(objects))
    if kind == "gc_sweep":
        return Op(kind)
    if kind == "advance":
        # Mostly small pauses; occasionally a jump long enough for
        # leases to expire, making passivated objects collectable.
        if rng.chance(0.15):
            return Op(kind, ms=float(rng.randint(11_000, 16_000)))
        return Op(kind, ms=round(rng.uniform(2.0, 250.0), 3))
    if kind == "lose_reply":
        return Op(kind, node=rng.choice(SERVER_NODES))
    raise AssertionError(kind)


def _generate_window(rng: DeterministicRandom, horizon_ms: float,
                     partitions: bool = False,
                     overload: bool = False):
    start = round(rng.uniform(0.0, horizon_ms * 0.7), 3)
    # The partition and stall kinds are gated behind their mode flags
    # rather than added to the default roll: window generation is a
    # pure function of (seed, config), and widening the default range
    # would reshuffle every pinned plan and digest in the regression
    # corpus.  The stall kind takes the highest roll value so enabling
    # it leaves every lower kind's mapping untouched.
    hi = 3
    if partitions:
        hi += 2
    if overload:
        hi += 1
    kind = rng.randint(0, hi)
    if overload and kind == hi:
        # Compute stall: the node keeps answering, slowly — queues
        # build behind the inflated dispatch charges, deadlines die in
        # them, and retry amplification starts.  The overload mode's
        # signature chaos (benchmark C26's trigger, randomized).
        duration = round(rng.uniform(horizon_ms * 0.05,
                                     horizon_ms * 0.20), 3)
        return StallWindow(rng.choice(SERVER_NODES), start,
                           start + duration,
                           factor=round(rng.uniform(80.0, 400.0), 3))
    if kind == 4:
        # Symmetric split: one server (sometimes with the client node)
        # against the rest of the fleet.
        duration = round(rng.uniform(horizon_ms * 0.05,
                                     horizon_ms * 0.25), 3)
        isolated = rng.choice(SERVER_NODES)
        side_a = [isolated]
        if rng.chance(0.5):
            side_a.append(CLIENT_NODE)
        side_b = [n for n in SERVER_NODES + (CLIENT_NODE,)
                  if n not in side_a]
        return PartitionWindow((tuple(sorted(side_a)),
                                tuple(sorted(side_b))),
                               start, start + duration)
    if kind == 5:
        # One-way reachability loss: a server whose egress to the other
        # servers is blocked while their replies still reach it.
        duration = round(rng.uniform(horizon_ms * 0.05,
                                     horizon_ms * 0.25), 3)
        source = rng.choice(SERVER_NODES)
        rest = tuple(n for n in SERVER_NODES if n != source)
        return AsymPartitionWindow((source,), rest, start,
                                   start + duration)
    if kind == 0:
        duration = round(rng.uniform(horizon_ms * 0.05,
                                     horizon_ms * 0.30), 3)
        return FlakyWindow(start, start + duration,
                           drop=round(rng.uniform(0.05, 0.35), 3))
    if kind == 1:
        duration = round(rng.uniform(horizon_ms * 0.05,
                                     horizon_ms * 0.20), 3)
        return CrashWindow(rng.choice(SERVER_NODES), start,
                           start + duration)
    if kind == 2:
        duration = round(rng.uniform(horizon_ms * 0.05,
                                     horizon_ms * 0.30), 3)
        ends = (CLIENT_NODE, rng.choice(SERVER_NODES))
        if rng.chance(0.5):
            ends = (ends[1], ends[0])
        return GrayWindow(start, start + duration,
                          factor=round(rng.uniform(2.0, 8.0), 3),
                          source=ends[0], destination=ends[1])
    duration = round(rng.uniform(horizon_ms * 0.03,
                                 horizon_ms * 0.15), 3)
    return CutWindow(CLIENT_NODE, rng.choice(SERVER_NODES),
                     start, start + duration)


def generate_plan(seed: int, config) -> Plan:
    """A plan is a pure function of (seed, config): same in, same out."""
    root = DeterministicRandom(seed, path=f"check:{seed}")
    op_rng = root.fork("check:plan")
    chaos_rng = root.fork("check:chaos")

    ops = [_generate_op(op_rng, config, index)
           for index in range(config.ops)]

    horizon = config.ops * config.op_budget_ms
    partitions = getattr(config, "partitions", False)
    overload = getattr(config, "overload", False)
    windows = [_generate_window(chaos_rng, horizon, partitions, overload)
               for _ in range(chaos_rng.randint(0, config.max_windows))]
    windows.sort(key=lambda w: (w.start_ms, type(w).__name__))
    return Plan(seed, ops, windows)
