"""Schedule shrinking: minimize a failing plan, deterministically.

Classic delta-debugging (ddmin) specialised for explorer plans: drop
chunks of operations (largest first), drop whole chaos windows, then
narrow surviving windows — re-running the candidate plan from the same
seed after every edit and keeping it only when it *still* fails with
at least one oracle in common with the original failure (guarding
against slippage onto an unrelated bug).  Shrinking is itself
deterministic: same failing plan in, same minimal plan out.

The payoff is :func:`repro_snippet`: a self-contained Python script —
plans are literal, ``repr`` round-trips — that replays the minimal
counterexample from a bare ``PYTHONPATH=src``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.check.explorer import CheckConfig, run_plan
from repro.check.oracles import Violation, run_all
from repro.check.plan import Plan


def judge(plan: Plan, config: CheckConfig) -> List[Violation]:
    """Run a plan and return its violations (a crash counts as one)."""
    try:
        result = run_plan(plan, config)
    except Exception as exc:  # noqa: BLE001 — a crash IS a finding
        return [Violation("crash", f"{type(exc).__name__}: {exc}")]
    return run_all(result)


@dataclass
class ShrinkReport:
    """The outcome of one shrink session."""

    plan: Plan
    violations: List[Violation]
    original_ops: int
    original_windows: int
    attempts: int = 0
    rounds: int = 0
    oracles: Set[str] = field(default_factory=set)

    def summary(self) -> str:
        return (f"shrunk {self.original_ops} ops -> "
                f"{len(self.plan.ops)}, {self.original_windows} "
                f"windows -> {len(self.plan.windows)} in "
                f"{self.attempts} runs / {self.rounds} rounds; "
                f"still failing: {sorted(self.oracles)}")


class Shrinker:
    """ddmin over one failing plan."""

    def __init__(self, plan: Plan, config: Optional[CheckConfig] = None,
                 max_attempts: int = 400) -> None:
        self.config = config or CheckConfig()
        self.max_attempts = max_attempts
        self.attempts = 0
        original = judge(plan, self.config)
        if not original:
            raise ValueError("plan does not fail: nothing to shrink")
        self.target_oracles = {v.oracle for v in original}
        self.plan = plan
        self.violations = original

    def _still_fails(self, candidate: Plan) -> Optional[List[Violation]]:
        if self.attempts >= self.max_attempts:
            return None
        self.attempts += 1
        violations = judge(candidate, self.config)
        if violations and \
                {v.oracle for v in violations} & self.target_oracles:
            return violations
        return None

    def _accept(self, candidate: Plan,
                violations: List[Violation]) -> None:
        self.plan = candidate
        self.violations = violations

    # -- reduction passes ----------------------------------------------------

    def _shrink_ops(self) -> bool:
        """One ddmin sweep over the op list; True if anything dropped."""
        progressed = False
        chunk = max(len(self.plan.ops) // 2, 1)
        while chunk >= 1:
            start = 0
            while start < len(self.plan.ops):
                ops = (self.plan.ops[:start]
                       + self.plan.ops[start + chunk:])
                if not ops and not self.plan.windows:
                    start += chunk
                    continue
                verdict = self._still_fails(self.plan.replace(ops=ops))
                if verdict is not None:
                    self._accept(self.plan.replace(ops=ops), verdict)
                    progressed = True
                    # Retry the same offset: the next chunk slid here.
                else:
                    start += chunk
            if chunk == 1:
                break
            chunk = max(chunk // 2, 1)
        return progressed

    def _shrink_windows(self) -> bool:
        """Drop whole chaos windows that are not needed to fail."""
        progressed = False
        index = 0
        while index < len(self.plan.windows):
            windows = (self.plan.windows[:index]
                       + self.plan.windows[index + 1:])
            verdict = self._still_fails(
                self.plan.replace(windows=windows))
            if verdict is not None:
                self._accept(self.plan.replace(windows=windows), verdict)
                progressed = True
            else:
                index += 1
        return progressed

    def _narrow_windows(self, halvings: int = 6) -> bool:
        """Halve surviving windows toward their start times."""
        progressed = False
        for index, window in enumerate(list(self.plan.windows)):
            end = getattr(window, "end_ms", None)
            start = getattr(window, "start_ms", None)
            if end is None or start is None:
                continue
            for _ in range(halvings):
                window = self.plan.windows[index]
                duration = window.end_ms - window.start_ms
                if duration <= 1.0:
                    break
                narrowed = dataclasses.replace(
                    window, end_ms=round(window.start_ms
                                         + duration / 2.0, 3))
                windows = list(self.plan.windows)
                windows[index] = narrowed
                verdict = self._still_fails(
                    self.plan.replace(windows=windows))
                if verdict is None:
                    break
                self._accept(self.plan.replace(windows=windows), verdict)
                progressed = True
        return progressed

    def run(self) -> ShrinkReport:
        original_ops = len(self.plan.ops)
        original_windows = len(self.plan.windows)
        rounds = 0
        while self.attempts < self.max_attempts:
            rounds += 1
            progressed = self._shrink_ops()
            progressed |= self._shrink_windows()
            progressed |= self._narrow_windows()
            if not progressed:
                break
        return ShrinkReport(
            plan=self.plan, violations=self.violations,
            original_ops=original_ops,
            original_windows=original_windows,
            attempts=self.attempts, rounds=rounds,
            oracles={v.oracle for v in self.violations})


def shrink(plan: Plan, config: Optional[CheckConfig] = None,
           max_attempts: int = 400) -> ShrinkReport:
    """Minimize a failing plan; raises ValueError if it does not fail."""
    return Shrinker(plan, config, max_attempts).run()


def repro_snippet(plan: Plan,
                  config: Optional[CheckConfig] = None) -> str:
    """A standalone script replaying *plan* (run with PYTHONPATH=src)."""
    config = config or CheckConfig()
    return (
        "# Reproduction: run with  PYTHONPATH=src python <this file>\n"
        "from repro.check import CheckConfig, run_plan\n"
        "from repro.check.oracles import run_all\n"
        "from repro.check.plan import Op, Plan\n"
        "from repro.net.fault import (AsymPartitionWindow, "
        "CrashWindow,\n                             CutWindow, "
        "FlakyWindow, GrayWindow,\n"
        "                             PartitionWindow, StallWindow)\n"
        "\n"
        f"config = {config!r}\n"
        f"plan = {plan!r}\n"
        "\n"
        "result = run_plan(plan, config)\n"
        "violations = run_all(result)\n"
        "for violation in violations:\n"
        "    print(violation)\n"
        "assert violations, 'expected at least one violation'\n"
    )
