"""Reference ADTs the simulation-test explorer hammers.

Small, deliberately *checkable* objects: every one has a cheap readonly
observation the oracles use to compare end state against a client-side
model.  They live inside the package (not the test tree) so a shrunken
counterexample snippet is runnable from a bare ``PYTHONPATH=src``.
"""

from __future__ import annotations

from repro.comp.model import OdpObject, operation
from repro.comp.outcomes import Signal


class Counter(OdpObject):
    """Non-idempotent by construction: the exactly-once canary."""

    def __init__(self, start: int = 0) -> None:
        self.value = start

    @operation(returns=[int])
    def increment(self):
        self.value += 1
        return self.value

    @operation(returns=[int], readonly=True)
    def read(self):
        return self.value


class Account(OdpObject):
    """The paper's bank account; the transfer workload's currency."""

    def __init__(self, balance: int = 0) -> None:
        self.balance = balance

    @operation(params=[int], returns=[int])
    def deposit(self, amount):
        if amount < 0:
            raise Signal("invalid_amount")
        self.balance += amount
        return self.balance

    @operation(params=[int], returns=[int],
               errors={"overdrawn": [int], "invalid_amount": []})
    def withdraw(self, amount):
        if amount < 0:
            raise Signal("invalid_amount")
        if amount > self.balance:
            raise Signal("overdrawn", self.balance)
        self.balance -= amount
        return self.balance

    @operation(returns=[int], readonly=True)
    def balance_of(self):
        return self.balance


class ShardStore(OdpObject):
    """Keyed counter: the sharded exactly-once canary.

    Every shard of a :class:`~repro.shard.space.ShardSpace` holds one of
    these; ``incr`` is non-idempotent so a double-execution during a
    migration window (or a write served by a non-owner) shows up in the
    per-key final value, not just in the routing log.
    """

    def __init__(self) -> None:
        self.data = {}

    @operation(params=[str], returns=[int])
    def incr(self, key):
        self.data[key] = self.data.get(key, 0) + 1
        return self.data[key]

    @operation(params=[str], returns=[int], readonly=True)
    def get(self, key):
        return self.data.get(key, 0)


class KvStore(OdpObject):
    """The replicated-state workhorse behind the object group."""

    def __init__(self) -> None:
        self.data = {}

    @operation(params=[str, str])
    def put(self, key, value):
        self.data[key] = value

    @operation(params=[str], returns=[str], readonly=True)
    def get(self, key):
        return self.data.get(key, "")

    @operation(returns=[int], readonly=True)
    def size(self):
        return len(self.data)
