"""Invariant oracles: what must hold at the end of *any* run.

Every oracle is a pure function of a
:class:`~repro.check.explorer.RunResult` returning a list of
:class:`Violation`\\ s.  Oracles are written to be *fault-aware*: an
operation that failed at the client is ambiguous (it executed zero or
one times), an in-doubt 2PC participant may legally hold an unresolved
before-image, and an object the collector legally reclaimed has no
final state to compare.  The oracles bound what chaos can do instead
of assuming it did nothing — so a clean pass over random seeds means
the platform's guarantees held, not that the checks were vacuous.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

#: Interface-id prefix shared by every explorer-placed object.
_PREFIX = "check."


@dataclass(frozen=True)
class Violation:
    """One invariant breach found in one run."""

    oracle: str
    message: str

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.message}"


def exactly_once(result) -> List[Violation]:
    """Non-idempotent ops execute once per acknowledgement.

    Every acknowledged increment executed exactly once (the reply cache
    absorbed retransmissions); every failed one executed zero or one
    times.  So: acked <= final <= acked + ambiguous.

    Shed increments (``ServerBusyError`` from admission control) are a
    *stronger* promise than failure: the server rejected them before
    dispatch, so they executed exactly zero times.  They count as
    unacked — widening neither bound — which makes this oracle the
    check that shedding really does happen before execution: a server
    that sheds after executing shows up as final > acked + ambiguous.
    """
    violations = []
    for name in sorted(result.counters):
        final = result.counter_final.get(name)
        if final is None:
            continue  # collected or unreadable: no final observation
        acked = result.counters[name]["acked"]
        ambiguous = result.counters[name]["ambiguous"]
        shed = result.counters[name].get("shed", 0)
        if not acked <= final <= acked + ambiguous:
            violations.append(Violation(
                "exactly_once",
                f"counter {name}: final={final} outside "
                f"[{acked}, {acked + ambiguous}] "
                f"(acked={acked}, ambiguous={ambiguous}, "
                f"shed={shed} — shed must not execute)"))
    return violations


def tx_atomicity(result) -> List[Violation]:
    """Transfers are all-or-nothing and roll back on abort.

    With no in-doubt participants the client-side model is exact per
    account.  In-doubt outcomes (a participant unreachable during the
    commit/abort phase) may legally strand one leg until resolution, so
    the check degrades to money conservation within the recorded
    allowance.
    """
    surviving = [name for name in sorted(result.accounts_model)
                 if name not in result.collected
                 and result.accounts_final.get(name) is not None]
    violations = []
    if not result.had_indoubt:
        for name in surviving:
            expected = result.accounts_model[name]
            actual = result.accounts_final[name]
            if actual != expected:
                violations.append(Violation(
                    "tx_atomicity",
                    f"account {name}: final balance {actual} != "
                    f"model {expected} (no in-doubt outcomes to "
                    f"explain the drift)"))
        return violations
    expected_sum = sum(result.accounts_model[name] for name in surviving)
    actual_sum = sum(result.accounts_final[name] for name in surviving)
    drift = abs(actual_sum - expected_sum)
    if drift > result.indoubt_allowance:
        violations.append(Violation(
            "tx_atomicity",
            f"money drift {drift} exceeds in-doubt allowance "
            f"{result.indoubt_allowance} "
            f"(expected {expected_sum}, got {actual_sum})"))
    return violations


def group_consistency(result) -> List[Violation]:
    """Alive, in-sync replicas agree; final values trace to real writes.

    The write ledger orders every ``group_put``: after the last
    acknowledged write to a key, only trailing ambiguous writes can
    explain a different final value.
    """
    violations = []
    synced = [m for m in result.member_states
              if m["alive"] and not m["out_of_sync"]
              and m["data"] is not None]
    if len(synced) > 1:
        reference = synced[0]
        for member in synced[1:]:
            if member["data"] != reference["data"]:
                violations.append(Violation(
                    "group_consistency",
                    f"member {member['index']} state "
                    f"{member['data']} != member "
                    f"{reference['index']} state {reference['data']}"))
    for key in sorted(result.group_writes):
        final = result.group_final.get(key)
        if final is None:
            continue  # group unreachable at the end: no observation
        ledger = result.group_writes[key]
        last_acked = None
        tail_ambiguous: List[str] = []
        for value, acked in ledger:
            if acked:
                last_acked = value
                tail_ambiguous = []
            else:
                tail_ambiguous.append(value)
        allowed = set(tail_ambiguous)
        allowed.add(last_acked if last_acked is not None else "")
        if final not in allowed:
            violations.append(Violation(
                "group_consistency",
                f"key {key!r}: final value {final!r} not among "
                f"last acked {last_acked!r} or trailing ambiguous "
                f"writes {tail_ambiguous!r}"))
    return violations


def relocation(result) -> List[Violation]:
    """No object is lost or duplicated by relocation forwarding.

    Every surviving object resolves (via forward hints / the
    relocator) to exactly the node the explorer last moved it to, and
    is still invocable through its original binding.
    """
    stuck = {iid[len(_PREFIX):] for iid in result.unresolved_iids
             if iid.startswith(_PREFIX)}
    violations = []
    for probe in result.relocation_probes:
        if probe["obj"] in stuck:
            continue  # an unresolved in-doubt lock, not a lost object
        if probe["resolved_node"] != probe["expected_node"]:
            violations.append(Violation(
                "relocation",
                f"object {probe['obj']}: relocator resolves to "
                f"{probe['resolved_node']!r}, explorer last placed it "
                f"on {probe['expected_node']!r}"))
        if not probe["final_ok"]:
            violations.append(Violation(
                "relocation",
                f"object {probe['obj']}: survived the run but is no "
                f"longer invocable through its original binding"))
    return violations


def gc_safety(result) -> List[Violation]:
    """The collector only reclaims passive objects with no live lease."""
    violations = []
    for obs in result.gc_observations:
        if obs["state"] != "passive" or obs["live_lease"]:
            violations.append(Violation(
                "gc_safety",
                f"{obs['iid']} collected while state={obs['state']!r} "
                f"live_lease={obs['live_lease']}"))
    return violations


def clock_monotonic(result) -> List[Violation]:
    """Virtual time never runs backwards, anywhere it is observed."""
    violations = []
    previous_end = None
    for event in result.events:
        if event["t1"] < event["t0"]:
            violations.append(Violation(
                "clock_monotonic",
                f"op {event['i']} ends at {event['t1']} before it "
                f"starts at {event['t0']}"))
        if previous_end is not None and event["t0"] < previous_end:
            violations.append(Violation(
                "clock_monotonic",
                f"op {event['i']} starts at {event['t0']}, before "
                f"the previous op ended at {previous_end}"))
        previous_end = event["t1"]
    by_id = {span["id"]: span for span in result.spans}
    for span in result.spans:
        if span["end"] is not None and span["end"] < span["start"]:
            violations.append(Violation(
                "clock_monotonic",
                f"span {span['id']} ends at {span['end']} before "
                f"its start {span['start']}"))
        parent = by_id.get(span["parent"])
        if parent is not None and span["start"] < parent["start"]:
            violations.append(Violation(
                "clock_monotonic",
                f"span {span['id']} starts at {span['start']} before "
                f"its parent {parent['id']} at {parent['start']}"))
    return violations


def self_heal(result) -> List[Violation]:
    """With the supervisor on, chaos must not leave the group degraded.

    After the heal epilogue (every node restarted, links healed, plus a
    grace period with the supervisor still running) the replica group
    must be back at full replication factor with every live member in
    sync — repaired by the supervisor's own detect->diagnose->repair
    loop, not by test fiat.  The detector must also have observed real
    heartbeats, so a pass cannot be vacuous.
    """
    if not getattr(result.config, "supervisor", False):
        return []
    heal = result.end_state.get("heal")
    if heal is None:
        return [Violation(
            "self_heal",
            "supervisor enabled but no heal report was recorded")]
    violations = []
    if heal["detector"]["heartbeats_observed"] == 0:
        violations.append(Violation(
            "self_heal", "the failure detector observed no heartbeats "
                         "(supervision was vacuous)"))
    live = [m for m in result.member_states if m["alive"]]
    if len(live) < result.config.group_size:
        violations.append(Violation(
            "self_heal",
            f"group has {len(live)} live member(s) after heal + grace, "
            f"needs {result.config.group_size}"))
    for member in live:
        if member["out_of_sync"]:
            violations.append(Violation(
                "self_heal",
                f"member {member['index']} is live but still awaiting "
                f"state transfer after heal + grace"))
    return violations


def split_brain(result) -> List[Violation]:
    """No write commits without quorum; no two members diverge at a seq.

    Judged against the per-member commit ledgers recorded in partitions
    mode.  Each ledger entry is ``(seq, view, acks, digest)`` — ``acks``
    is the coordinator's own count (``None`` on relay-appliers, which
    only learn the write, not the tally).  Two clauses:

    * *Unsafe commit*: a coordinator retained a ledger entry whose ack
      count is below the configured reply quorum.  The quorum barrier
      rolls such writes back, so any surviving entry means a minority
      side committed alone — the split-brain write the barrier exists
      to prevent.
    * *Divergence*: two members hold a committed entry at the same
      sequence number with different write digests.  Since sequence
      numbers are burned (never reused) and the ledger survives state
      transfer only on the member that applied the write, this is two
      sides of a partition each deciding the same slot differently.
    """
    ledgers = [(m["index"], m.get("commits"))
               for m in result.member_states]
    if all(commits is None for _, commits in ledgers):
        return []  # default mode: no ledgers recorded, nothing to judge
    quorum = result.config.reply_quorum
    violations = []
    by_seq: Dict[int, List] = {}
    for index, commits in ledgers:
        for entry in commits or []:
            seq, view, acks, digest = entry
            if acks is not None and acks < quorum:
                violations.append(Violation(
                    "split_brain",
                    f"member {index} committed seq {seq} (view {view}) "
                    f"with only {acks} ack(s), quorum is {quorum}"))
            by_seq.setdefault(seq, []).append((index, view, digest))
    for seq in sorted(by_seq):
        digests = {digest for _, _, digest in by_seq[seq]}
        if len(digests) > 1:
            detail = ", ".join(
                f"member {index} (view {view}): {digest!r}"
                for index, view, digest in by_seq[seq])
            violations.append(Violation(
                "split_brain",
                f"divergent commits at seq {seq}: {detail}"))
    return violations


def shard_routing(result) -> List[Violation]:
    """Every shard write ran on the epoch-current owner, exactly once.

    Judged against the shard fences' write-execution log recorded in
    shards mode.  Three clauses:

    * *Per-key envelope*: keyed increments obey the same exactly-once
      bound as the counters — acked <= final <= acked + ambiguous —
      across every migration window the plan's ``shard_move`` ops (and
      the supervisor, when enabled) opened.  A write that executed on
      both sides of a cutover overshoots the upper bound.
    * *No double dispatch*: no invocation id appears twice in the log.
      Retransmissions are answered from the reply cache before dispatch
      (the dedup window travels with graceful moves), so a second log
      entry means the same write reached two object incarnations.
    * *Owner of record*: every logged write was dispatched on the node
      the space's ownership table named at that moment.  A stale router
      is allowed through only once its chase lands on the real owner;
      an entry with ``node != owner`` means a fence let a misrouted
      write execute.
    """
    if not getattr(result.config, "shards", False):
        return []
    violations = []
    for key in sorted(result.shard_writes):
        final = result.shard_final.get(key)
        if final is None:
            continue  # unreadable at the end: no final observation
        acked = result.shard_writes[key]["acked"]
        ambiguous = result.shard_writes[key]["ambiguous"]
        if not acked <= final <= acked + ambiguous:
            violations.append(Violation(
                "shard_routing",
                f"key {key!r}: final={final} outside "
                f"[{acked}, {acked + ambiguous}] (acked={acked}, "
                f"ambiguous={ambiguous})"))
    executed: Dict[str, str] = {}
    for entry in result.shard_log:
        inv_id = entry["inv_id"]
        if inv_id in executed:
            violations.append(Violation(
                "shard_routing",
                f"invocation {inv_id} dispatched twice (shard "
                f"{entry['shard']}: first on {executed[inv_id]!r}, "
                f"again on {entry['node']!r})"))
        else:
            executed[inv_id] = entry["node"]
        if entry["node"] != entry["owner"]:
            violations.append(Violation(
                "shard_routing",
                f"write {inv_id} on shard {entry['shard']} executed "
                f"by {entry['node']!r} but the owner of record was "
                f"{entry['owner']!r}"))
    return violations


def staleness_bound(result) -> List[Violation]:
    """Cached reads are never staler than the lease TTL, nor reordered.

    Judged against the caching client's read log and the timestamped
    group-write ledger recorded in leases mode.  Every read (cache hit
    *or* fetch — the contract covers the interface, not one code path)
    must return a value that is a real write (or the empty default),
    and three clauses must hold:

    * *Bounded staleness*: if the returned value was superseded, the
      earliest acknowledged write that superseded it was acked at most
      ``lease_ttl_ms`` before the read.  Ack time is client-observed —
      at or after the commit — so the bound judged here is
      conservative: a violation means the cache really served a value
      beyond its grant's validity (invalidations lost *and* never
      repaired by renewal), never a timing artefact.
    * *Monotonic reads per key*: a later read never returns an earlier
      ledger position than a previous read of the same key did — the
      cache cannot travel back in time.
    * *No phantoms*: a non-empty returned value must appear in the
      ledger at all.
    """
    if not getattr(result.config, "leases", False):
        return []
    bound = result.config.lease_ttl_ms + 1e-6
    violations = []
    last_position: Dict[str, int] = {}
    for read in result.lease_reads:
        tag = read["tag"]
        ledger = result.lease_writes.get(tag, [])
        value = read["values"][0] if read["values"] else ""
        if value == "":
            # The key's default: legal before any write lands, and
            # carries no ledger position to order against.
            position = -1
        else:
            positions = [i for i, (v, _, _) in enumerate(ledger)
                         if v == value]
            if not positions:
                violations.append(Violation(
                    "staleness_bound",
                    f"key {tag!r}: read at t={read['t']} (via "
                    f"{read['via']}) returned {value!r}, which no "
                    f"recorded write produced"))
                continue
            # An identical value may be written twice; crediting the
            # read to the latest occurrence is the reader-friendly
            # interpretation for both clauses below.
            position = max(positions)
            previous = last_position.get(tag)
            if previous is not None and position < previous:
                violations.append(Violation(
                    "staleness_bound",
                    f"key {tag!r}: read at t={read['t']} (via "
                    f"{read['via']}) returned ledger position "
                    f"{position} after an earlier read saw position "
                    f"{previous} — reads ran backwards"))
        last_position[tag] = max(last_position.get(tag, -1), position)
        for value2, t_ack, acked in ledger[position + 1:]:
            if not acked:
                continue  # an unacked write may never have committed
            if read["t"] - t_ack > bound:
                violations.append(Violation(
                    "staleness_bound",
                    f"key {tag!r}: read at t={read['t']} (via "
                    f"{read['via']}) returned {value!r}, superseded by "
                    f"{value2!r} acked at t={t_ack} — "
                    f"{round(read['t'] - t_ack, 3)}ms stale, bound is "
                    f"{result.config.lease_ttl_ms}ms"))
            break  # only the earliest superseding ack sets the clock
    return violations


def overload_safety(result) -> List[Violation]:
    """Shed or expired work never executes; retries stay in budget;
    shedding never inverts priority.

    Judged against the evidence recorded in overload mode.  Three
    clauses:

    * *No execution past deadline*: the deadline gates log every
      dispatched execution with the propagated deadline it carried; an
      entry whose ``executed_at`` exceeds its deadline means a gate let
      dead work burn compute — exactly what the ``deadline`` mutation
      silently permits, so this clause is what must catch it.
    * *Retry volume within budget*: per (node, protocol) path, granted
      retries can never exceed the budget's opening balance plus the
      ratio-deposit of every first attempt — the cap on retry
      amplification that keeps a stall from going metastable.
    * *No priority inversion*: within one virtual instant, once the
      admission controller shed a request of class ``p``, no request of
      a class below ``p`` may be admitted later in that same instant
      (bounds are monotone in class and the token deficit only grows
      while the clock stands still).
    """
    if not getattr(result.config, "overload", False):
        return []
    violations = []
    for entry in result.overload_executions:
        deadline = entry["deadline"]
        if deadline is None:
            continue
        late = entry["executed_at"] - deadline
        if late > 1e-6:
            violations.append(Violation(
                "overload_safety",
                f"invocation {entry['inv_id']} ({entry['op']}) started "
                f"executing on {entry['node']} at "
                f"t={round(entry['executed_at'], 3)}, "
                f"{round(late, 3)}ms past its propagated deadline "
                f"{round(deadline, 3)} — expired work must be shed, "
                f"never dispatched"))
    ratio, cap = result.overload_budget_params
    for path in sorted(result.overload_budgets):
        stats = result.overload_budgets[path]
        allowed = cap + ratio * stats["first_attempts"]
        if stats["retries_granted"] > allowed + 1e-6:
            violations.append(Violation(
                "overload_safety",
                f"path {path}: {stats['retries_granted']} retries "
                f"granted exceeds the budget bound "
                f"{round(allowed, 3)} (cap {cap} + {ratio} x "
                f"{stats['first_attempts']} first attempts)"))
    for node in sorted(result.overload_admission):
        instant = None
        worst_shed = -1
        for t, priority, verdict in result.overload_admission[node]:
            if instant is None or abs(t - instant) > 1e-9:
                instant = t
                worst_shed = -1
            if verdict == "shed":
                worst_shed = max(worst_shed, priority)
            elif priority < worst_shed:
                violations.append(Violation(
                    "overload_safety",
                    f"priority inversion on {node} at t={round(t, 3)}: "
                    f"class {priority} admitted after class "
                    f"{worst_shed} was shed in the same virtual "
                    f"instant"))
    return violations


#: The oracle catalogue, in reporting order.
ORACLES: Dict[str, Callable] = {
    "exactly_once": exactly_once,
    "tx_atomicity": tx_atomicity,
    "group_consistency": group_consistency,
    "split_brain": split_brain,
    "shard_routing": shard_routing,
    "staleness_bound": staleness_bound,
    "overload_safety": overload_safety,
    "relocation": relocation,
    "gc_safety": gc_safety,
    "clock_monotonic": clock_monotonic,
    "self_heal": self_heal,
}


def run_all(result) -> List[Violation]:
    """Judge one run against every oracle."""
    violations: List[Violation] = []
    for oracle in ORACLES.values():
        violations.extend(oracle(result))
    return violations
