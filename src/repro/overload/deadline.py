"""End-to-end deadline propagation.

A QoS deadline that lives only in the client stub protects nobody: by
the time an overloaded server dequeues the request the client has long
given up, yet the server still spends compute executing work whose
result will be discarded — the fuel of metastable retry storms.  The
fix mirrors PR 4's ``VIEW_KEY`` pattern: the client stamps the absolute
virtual-clock deadline into the invocation context under
:data:`DEADLINE_KEY`, every hop carries it verbatim (one shared virtual
clock makes the absolute form equivalent to per-hop decrement), and the
server's :class:`DeadlineGate` sheds expired work *at arrival*, before
it consumes admission tokens, and again *post-queue*, before dispatch —
so no operation ever starts executing after its deadline has passed.

Shedding an expired invocation raises
:class:`~repro.errors.InvocationExpiredError`: like a
``ServerBusyError`` shed it is a promise the operation did not run, but
unlike one it is *not* retryable — the deadline is dead, retrying can
only feed the storm.

``qos.priority`` rides the same context under :data:`PRIORITY_KEY` so
the class-aware admission controller can shed lowest-class-first.

Both keys are stamped only when the client nucleus opts in via
``deadline_propagation`` — the default wire format is byte-identical to
the pre-overload platform (the check harness pins its default-mode
digests against exactly that).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

#: Context key carrying the absolute virtual-clock deadline (ms).
DEADLINE_KEY = "deadline_at"

#: Context key carrying the QoS priority class (0-3).
PRIORITY_KEY = "priority"

#: Priority classes: 0 = background (shed first) .. 3 = critical.
NUM_CLASSES = 4

#: Class assigned when an invocation carries no explicit priority.
DEFAULT_PRIORITY = 2


def deadline_of(extra: Mapping[str, Any]) -> Optional[float]:
    """The absolute deadline stamped in a context ``extra`` dict."""
    value = extra.get(DEADLINE_KEY)
    return float(value) if value is not None else None


def priority_of(extra: Mapping[str, Any]) -> int:
    """The priority class stamped in a context ``extra`` dict."""
    value = extra.get(PRIORITY_KEY)
    if value is None:
        return DEFAULT_PRIORITY
    return max(0, min(NUM_CLASSES - 1, int(value)))


class DeadlineGate:
    """Server-side deadline enforcement for one nucleus.

    Checked twice per invocation: at arrival (before admission tokens
    are consumed — expired work must not displace live work) and after
    the queue wait has been charged (so "no execution starts after the
    deadline" holds even when admission queued the request for longer
    than it had left to live).
    """

    #: TEST-ONLY: skip both deadline checks, letting expired work
    #: execute.  Trips exactly the ``overload_safety`` oracle.
    mutate_skip_deadline_check = False

    def __init__(self, clock) -> None:
        self.clock = clock
        self.expired_on_arrival = 0
        self.expired_post_queue = 0
        #: When set, every dispatched execution is logged with the
        #: deadline it carried — the overload_safety oracle's evidence.
        self.record_executions = False
        self.execution_log: List[Dict[str, Any]] = []

    def expired(self, deadline_at: Optional[float]) -> bool:
        if deadline_at is None:
            return False
        if type(self).mutate_skip_deadline_check:
            return False
        return self.clock.now > deadline_at + 1e-9

    def note_arrival_shed(self) -> None:
        self.expired_on_arrival += 1

    def note_post_queue_shed(self) -> None:
        self.expired_post_queue += 1

    def note_execution(self, invocation_id: str, operation: str,
                       deadline_at: Optional[float]) -> None:
        if self.record_executions:
            self.execution_log.append({
                "inv_id": invocation_id,
                "op": operation,
                "deadline": deadline_at,
                "executed_at": self.clock.now,
            })

    def stats(self) -> Dict[str, int]:
        return {
            "expired_on_arrival": self.expired_on_arrival,
            "expired_post_queue": self.expired_post_queue,
        }

    def __repr__(self) -> str:
        return (f"DeadlineGate(arrival={self.expired_on_arrival}, "
                f"post_queue={self.expired_post_queue})")
