"""Overload robustness: deadline propagation, retry budgets, brownout.

The mechanisms that keep a transparent infrastructure dependable when
the threat is not a crash or a partition but *its own clients*: a
transient stall turns into naive retransmissions from every layer, and
without shared budgets, propagated deadlines and class-aware shedding
the system settles into a metastable state where all capacity is spent
on work nobody is still waiting for.
"""

from repro.overload.budget import RetryBudget, RetryBudgetRegistry
from repro.overload.deadline import (
    DEADLINE_KEY,
    DEFAULT_PRIORITY,
    NUM_CLASSES,
    PRIORITY_KEY,
    DeadlineGate,
    deadline_of,
    priority_of,
)

__all__ = [
    "BrownoutController",
    "ClassAdmissionController",
    "RetryBudget",
    "RetryBudgetRegistry",
    "DEADLINE_KEY",
    "DEFAULT_PRIORITY",
    "NUM_CLASSES",
    "PRIORITY_KEY",
    "DeadlineGate",
    "deadline_of",
    "priority_of",
]


def __getattr__(name):
    # The admission module subclasses repro.perf's controller, and
    # repro.perf transitively imports the engine — which imports this
    # package for the budget/deadline primitives.  Resolving the
    # admission exports lazily keeps that cycle open.
    if name in ("BrownoutController", "ClassAdmissionController"):
        from repro.overload import admission

        return getattr(admission, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
