"""Class-aware admission control and brownout.

ROADMAP item C23 asks for "priority classes honoured by the PR 5
admission controller".  The PR 5 :class:`~repro.perf.admission.
AdmissionController` sheds classlessly: at the queue bound a critical
write and a background scan are equally likely to be dropped.  The
class-aware subclass keeps the same token-deficit model but gives each
priority class its own *monotone* queue bound — class ``p`` may occupy
the cumulative weight share of the full bound, so when the queue
grows, class 0 hits its (small) bound first and is shed while class 3
still has headroom.  Within one virtual instant the deficit only grows
(tokens replenish with elapsed time, which is zero), so once class
``p`` is shed every later attempt by a class below ``p`` at the same
instant is shed too — the invariant the ``overload_safety`` oracle's
no-priority-inversion clause checks.

The :class:`BrownoutController` adds the adaptive half: it watches the
queue waits of *admitted* work and steps a brownout level 0-3 up when
the observed p99 exceeds the target (and back down once it clears).
At level ``L`` every class below ``L`` is shed outright, before even
consulting the bucket — progressively browning out background work to
keep the waits of what still runs bounded.  The level is re-evaluated
at most once per virtual instant so it is constant within an instant,
preserving the inversion-freedom invariant.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.errors import ServerBusyError
from repro.overload.deadline import DEFAULT_PRIORITY, NUM_CLASSES
from repro.perf.admission import AdmissionController


class BrownoutController:
    """Steps shed-aggressiveness from observed queue-wait p99."""

    def __init__(self, clock, target_p99_ms: float = 20.0,
                 window: int = 32,
                 max_level: int = NUM_CLASSES - 1) -> None:
        self.clock = clock
        self.target_p99_ms = target_p99_ms
        self.window = window
        self.max_level = max_level
        self.level = 0
        self.escalations = 0
        self.relaxations = 0
        self._waits: deque = deque(maxlen=window)
        self._last_eval = clock.now

    def observe(self, wait_ms: float) -> None:
        self._waits.append(wait_ms)
        now = self.clock.now
        # Re-evaluate at most once per virtual instant: the level must
        # be constant within an instant (no priority inversion).
        if now <= self._last_eval or len(self._waits) < self.window:
            return
        self._last_eval = now
        ordered = sorted(self._waits)
        p99 = ordered[min(len(ordered) - 1,
                          int(len(ordered) * 0.99))]
        if p99 > self.target_p99_ms and self.level < self.max_level:
            self.level += 1
            self.escalations += 1
            self._waits.clear()
        elif p99 <= self.target_p99_ms * 0.5 and self.level > 0:
            self.level -= 1
            self.relaxations += 1
            self._waits.clear()

    def stats(self) -> Dict[str, object]:
        return {
            "level": self.level,
            "target_p99_ms": self.target_p99_ms,
            "escalations": self.escalations,
            "relaxations": self.relaxations,
        }


class ClassAdmissionController(AdmissionController):
    """Token-bucket admission with weighted per-class queue bounds."""

    def __init__(self, clock, rate_per_s: float = 2000.0,
                 burst: int = 16, max_queue: Optional[int] = 64,
                 weights: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0),
                 brownout: Optional[BrownoutController] = None) -> None:
        super().__init__(clock, rate_per_s, burst, max_queue)
        if len(weights) != NUM_CLASSES:
            raise ValueError(f"need {NUM_CLASSES} class weights")
        if any(w <= 0.0 for w in weights):
            raise ValueError("class weights must be positive")
        self.weights = tuple(float(w) for w in weights)
        total = sum(self.weights)
        if max_queue is None:
            self._bounds: Tuple[Optional[float], ...] = \
                (None,) * NUM_CLASSES
        else:
            bounds: List[float] = []
            cumulative = 0.0
            for weight in self.weights:
                cumulative += weight
                bounds.append(max_queue * cumulative / total)
            self._bounds = tuple(bounds)  # last == max_queue exactly
        self.brownout = brownout
        self.class_admitted = [0] * NUM_CLASSES
        self.class_shed = [0] * NUM_CLASSES
        self.brownout_shed = 0
        #: When set, every verdict is logged as (clock, priority,
        #: verdict) — evidence for the no-priority-inversion clause.
        self.record_events = False
        self.events: List[Tuple[float, int, str]] = []

    def _note(self, priority: int, verdict: str) -> None:
        if self.record_events:
            self.events.append((self.clock.now, priority, verdict))

    def admit(self, cost: int = 1,
              priority: int = DEFAULT_PRIORITY) -> float:
        priority = max(0, min(NUM_CLASSES - 1, int(priority)))
        self._replenish()
        if self.brownout is not None and self.brownout.level > priority:
            self.shed += cost
            self.class_shed[priority] += cost
            self.brownout_shed += cost
            self._note(priority, "shed")
            raise ServerBusyError(
                f"server browning out: class {priority} shed at "
                f"brownout level {self.brownout.level} (retryable)")
        projected = self._tokens - cost
        bound = self._bounds[priority]
        if bound is not None and -projected > bound + 1e-9:
            self.shed += cost
            self.class_shed[priority] += cost
            self._note(priority, "shed")
            raise ServerBusyError(
                f"server overloaded: class {priority} dispatch queue "
                f"at bound {round(bound, 3)}, invocation shed "
                f"(retryable)")
        self._tokens = projected
        self.admitted += cost
        self.class_admitted[priority] += cost
        self._note(priority, "admit")
        if projected >= 0.0:
            if self.brownout is not None:
                self.brownout.observe(0.0)
            return 0.0
        depth = int(-projected)
        if depth > self.max_depth:
            self.max_depth = depth
        wait_ms = -projected / self.rate_per_ms
        self.queued += cost
        self.total_wait_ms += wait_ms
        if self.brownout is not None:
            self.brownout.observe(wait_ms)
        return wait_ms

    def class_stats(self) -> Dict[str, object]:
        return {
            "admitted": list(self.class_admitted),
            "shed": list(self.class_shed),
            "brownout_shed": self.brownout_shed,
            "brownout_level": (self.brownout.level
                               if self.brownout is not None else 0),
        }
