"""Retry budgets: a shared cap on retry amplification per path.

Every retrying layer in the platform — the channel transport, the
batch retransmitter, the group and shard clients, the lease cache's
renewals — independently believes its retries are cheap.  Under a
server stall they compound: each layer multiplies the offered load of
the layer above, and the aggregate retry volume is what keeps the
server saturated long after the stall ends (the metastable state the
C26 benchmark reproduces).

The budget is the classic token-ratio design: each *first attempt*
against a (node, protocol) path deposits ``ratio`` tokens (default 10%)
into that path's budget, each retry withdraws one whole token, and the
balance is capped so an idle period cannot bank an unbounded burst.
All layers retrying toward the same path share one budget, so total
retry volume per path is bounded at ``ratio`` of first-attempt traffic
regardless of how many layers are stacked.

A denied withdrawal surfaces as
:class:`~repro.errors.RetryBudgetExhaustedError` — classified exactly
like ``ServerBusyError``: retryable-later, *never* evidence that a
member died, so it must not suspect group members, feed circuit
breakers, or trigger shard-router failover.

The registry starts ``enabled=False``: it observes (counts first
attempts and retries) but always grants, so the pre-overload retry
behaviour — and the check harness's pinned default digests — are
untouched until a run opts in.
"""

from __future__ import annotations

from typing import Dict, Tuple


class RetryBudget:
    """Token-ratio retry budget for one (node, protocol) path."""

    def __init__(self, ratio: float = 0.1, cap: float = 10.0) -> None:
        if ratio < 0.0:
            raise ValueError("ratio must be non-negative")
        if cap < 1.0:
            raise ValueError("cap must allow at least one retry")
        self.ratio = ratio
        self.cap = cap
        self.tokens = float(cap)  # start full: a cold path may retry
        self.first_attempts = 0
        self.retries_granted = 0
        self.retries_denied = 0

    def note_first(self) -> None:
        self.first_attempts += 1
        self.tokens = min(self.cap, self.tokens + self.ratio)

    @property
    def has_budget(self) -> bool:
        return self.tokens >= 1.0

    def try_spend(self, enforce: bool = True) -> bool:
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.retries_granted += 1
            return True
        if not enforce:
            self.retries_granted += 1
            return True
        self.retries_denied += 1
        return False

    def stats(self) -> Dict[str, object]:
        return {
            "tokens": round(self.tokens, 3),
            "first_attempts": self.first_attempts,
            "retries_granted": self.retries_granted,
            "retries_denied": self.retries_denied,
        }


class RetryBudgetRegistry:
    """Per-(node, protocol) budgets shared by every retrying layer.

    One registry hangs off each client nucleus; layers address budgets
    by the destination node and a coarse protocol label ("invoke",
    "batch", "group", "shard", "lease") so unrelated traffic classes do
    not drain each other's headroom.
    """

    def __init__(self, ratio: float = 0.1, cap: float = 10.0,
                 enabled: bool = False) -> None:
        self.ratio = ratio
        self.cap = cap
        self.enabled = enabled
        self._budgets: Dict[Tuple[str, str], RetryBudget] = {}

    def budget(self, node: str, protocol: str) -> RetryBudget:
        key = (node, protocol)
        budget = self._budgets.get(key)
        if budget is None:
            budget = self._budgets[key] = RetryBudget(self.ratio, self.cap)
        return budget

    def note_first(self, node: str, protocol: str) -> None:
        self.budget(node, protocol).note_first()

    def try_spend(self, node: str, protocol: str) -> bool:
        """Withdraw one retry token; always grants when disabled."""
        return self.budget(node, protocol).try_spend(enforce=self.enabled)

    def can_spend(self, node: str, protocol: str) -> bool:
        """Peek: would a withdrawal succeed?  (For optional work —
        e.g. proactive lease renewals — that should simply be skipped
        rather than attempted and denied.)"""
        if not self.enabled:
            return True
        return self.budget(node, protocol).has_budget

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {
            f"{node}:{protocol}": self._budgets[(node, protocol)].stats()
            for node, protocol in sorted(self._budgets)
        }

    def totals(self) -> Dict[str, object]:
        totals = {"paths": len(self._budgets), "first_attempts": 0,
                  "retries_granted": 0, "retries_denied": 0}
        for budget in self._budgets.values():
            totals["first_attempts"] += budget.first_attempts
            totals["retries_granted"] += budget.retries_granted
            totals["retries_denied"] += budget.retries_denied
        return totals
