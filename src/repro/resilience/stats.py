"""Client-side resilience counters, aggregated per nucleus.

Transports are per-channel objects; to give the management viewpoint
(section 7.4) one place to read, every transport also increments its
nucleus's :class:`ResilienceStats`.  The monitor folds these into
``domain_report()["resilience"]`` together with the breaker and
reply-cache counters.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ResilienceStats:
    """What the resilience layer did on behalf of one node's clients."""

    #: Retransmissions after message loss.
    retries: int = 0
    #: Total virtual time spent in backoff waits.
    backoff_wait_ms: float = 0.0
    #: Times an exhausted or dead path was abandoned for the next one.
    path_failovers: int = 0
    #: Attempts skipped outright because a breaker was open.
    breaker_short_circuits: int = 0

    def as_dict(self) -> dict:
        return {
            "retries": self.retries,
            "backoff_wait_ms": self.backoff_wait_ms,
            "path_failovers": self.path_failovers,
            "breaker_short_circuits": self.breaker_short_circuits,
        }
