"""Circuit breakers over access paths.

A reference may carry several access paths (section 5.4); when one of
them leads to a crashed or partitioned node, every invocation that
insists on probing it first pays the failure before failing over.  A
:class:`CircuitBreaker` per (node, protocol) pair remembers recent
failures so path selection can skip dead paths outright:

* **closed** — traffic flows; consecutive failures are counted;
* **open** — after ``failure_threshold`` consecutive failures the
  breaker rejects traffic for ``reset_timeout_ms`` of virtual time;
* **half-open** — after the cooldown one probe is let through: success
  closes the breaker, failure re-opens it (and re-arms the cooldown).

Only :class:`~repro.errors.NodeUnreachableError` feeds the breaker —
probabilistic message loss is the retry policy's problem, not evidence
that a path is dead.
"""

from __future__ import annotations

import enum
from typing import Dict, Tuple

from repro.sim.clock import VirtualClock


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure memory for one (node, protocol) access path."""

    def __init__(self, clock: VirtualClock,
                 failure_threshold: int = 5,
                 reset_timeout_ms: float = 250.0) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_ms < 0.0:
            raise ValueError("reset_timeout_ms must be non-negative")
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.reset_timeout_ms = reset_timeout_ms
        self.state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self.trips = 0
        self.rejections = 0
        self.successes = 0
        self.failures = 0

    def allow(self) -> bool:
        """May an attempt be made now?  Open -> half-open on cooldown."""
        if self.state == BreakerState.OPEN:
            if self.clock.now - self._opened_at >= self.reset_timeout_ms:
                self.state = BreakerState.HALF_OPEN
                return True
            self.rejections += 1
            return False
        return True

    def record_success(self) -> None:
        self.successes += 1
        self._consecutive_failures = 0
        self.state = BreakerState.CLOSED

    def record_failure(self) -> None:
        self.failures += 1
        self._consecutive_failures += 1
        if (self.state == BreakerState.HALF_OPEN
                or self._consecutive_failures >= self.failure_threshold):
            if self.state != BreakerState.OPEN:
                self.trips += 1
            self.state = BreakerState.OPEN
            self._opened_at = self.clock.now
            self._consecutive_failures = 0

    def __repr__(self) -> str:
        return (f"CircuitBreaker({self.state.value}, "
                f"trips={self.trips}, rejections={self.rejections})")


class BreakerRegistry:
    """All of one nucleus's breakers, keyed by (node, protocol)."""

    def __init__(self, clock: VirtualClock,
                 failure_threshold: int = 5,
                 reset_timeout_ms: float = 250.0) -> None:
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.reset_timeout_ms = reset_timeout_ms
        self._breakers: Dict[Tuple[str, str], CircuitBreaker] = {}

    def breaker_for(self, node: str,
                    protocol: str = "rrp") -> CircuitBreaker:
        key = (node, protocol)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(self.clock, self.failure_threshold,
                                     self.reset_timeout_ms)
            self._breakers[key] = breaker
        return breaker

    def snapshot(self) -> Dict[str, int]:
        """Aggregate counters for the management monitor."""
        trips = rejections = open_now = 0
        for breaker in self._breakers.values():
            trips += breaker.trips
            rejections += breaker.rejections
            if breaker.state != BreakerState.CLOSED:
                open_now += 1
        return {"trips": trips, "rejections": rejections,
                "open": open_now, "paths": len(self._breakers)}

    def __len__(self) -> int:
        return len(self._breakers)
