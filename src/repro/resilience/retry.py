"""Retry policy: exponential backoff with deterministic jitter.

The QoS model (section 5.1) lets every invocation carry its own
communications constraints.  A :class:`RetryPolicy` is the mechanism
compiled from those constraints: attempt count, a geometric delay
series, a per-attempt jitter drawn from a forked
:class:`~repro.sim.rand.DeterministicRandom` stream (so two
identically-seeded runs back off identically), and a hard cap so a
single wait never overshoots the delay ceiling.

The transport additionally clips every wait against the remaining QoS
deadline budget: the virtual clock is never advanced past
``qos.deadline_ms`` only to discover afterwards that the deadline
passed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comp.invocation import QoS
from repro.sim.rand import DeterministicRandom


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for retransmissions on one access path."""

    #: Total attempts per access path (first try + retries).
    max_attempts: int = 3
    #: Delay before the first retransmission.
    base_delay_ms: float = 1.0
    #: Geometric growth factor for successive delays.
    multiplier: float = 2.0
    #: Ceiling on any single delay.
    max_delay_ms: float = 50.0
    #: Symmetric jitter fraction applied to each delay (0.1 = +/-10%).
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_ms < 0.0 or self.max_delay_ms < 0.0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1.0")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    @classmethod
    def from_qos(cls, qos: QoS) -> "RetryPolicy":
        """Compile the invocation's QoS constraints into a policy."""
        return cls(
            max_attempts=qos.retries + 1,
            base_delay_ms=qos.retry_delay_ms,
            multiplier=qos.backoff_multiplier,
            max_delay_ms=qos.retry_delay_max_ms,
            jitter=qos.retry_jitter,
        )

    def delay_ms(self, attempt: int,
                 rng: DeterministicRandom) -> float:
        """Delay before retransmitting after failed attempt *attempt*.

        ``attempt`` is zero-based: the delay after the first failed try
        is ``base_delay_ms`` (jittered).
        """
        delay = min(self.max_delay_ms,
                    self.base_delay_ms * (self.multiplier ** attempt))
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, delay)
