"""Server-side reply deduplication: exactly-once retransmission.

The duplicate-execution hazard (section 4.1's unmaskable-failure
discussion made concrete): a client that retransmits after losing the
*reply* leg of an interrogation re-delivers a request the server
already executed.  Without memory, the server executes it again —
at-least-once semantics, silently wrong for non-idempotent operations.

The :class:`ReplyCache` is that memory.  Every invocation carries a
unique ``invocation_id``; after dispatch the nucleus caches the encoded
reply under that id, and a retransmission returns the cached bytes
instead of dispatching twice.  Only successful (``term``) replies are
cached: error replies are regenerated so a retry after the fault was
repaired (relocation, lock release) is not poisoned by a stale error.

The cache is bounded (insertion-order eviction); a duplicate arriving
after its entry was evicted degrades to at-least-once, the usual
window-of-vulnerability trade every dedup cache makes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional


class ReplyCache:
    """Bounded invocation-id -> encoded-reply cache for one nucleus."""

    #: TEST-ONLY mutation hook (repro.check oracle-sensitivity tests):
    #: when True, lookups miss unconditionally, silently degrading the
    #: platform to at-least-once so the exactly-once oracle must notice.
    #: Never set in production code paths.
    mutate_skip_lookup = False

    def __init__(self, capacity: int = 4096, enabled: bool = True,
                 clock=None) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self.enabled = enabled
        #: Virtual clock for eager deadline eviction; None disables it.
        self.clock = clock
        self._replies: "OrderedDict[str, bytes]" = OrderedDict()
        #: invocation_id -> propagated deadline for entries whose
        #: invocation carried one.  Past its deadline a reply can never
        #: be *legally* replayed — the client stops retransmitting — so
        #: the entry is dead weight and is purged eagerly instead of
        #: squatting in the capacity window.
        self._expiry: Dict[str, float] = {}
        self.duplicates_suppressed = 0
        self.replies_cached = 0
        self.evictions = 0
        self.expired_evictions = 0

    def lookup(self, invocation_id: str) -> Optional[bytes]:
        """Return the cached reply for a retransmission, if any."""
        if not self.enabled or not invocation_id:
            return None
        if self.mutate_skip_lookup:
            return None  # test-only: behave as if never seen
        reply = self._replies.get(invocation_id)
        if reply is not None:
            self.duplicates_suppressed += 1
        return reply

    def store(self, invocation_id: str, reply: bytes,
              expires_at: Optional[float] = None) -> None:
        if not self.enabled or not invocation_id or self.capacity == 0:
            return
        if invocation_id not in self._replies:
            self.replies_cached += 1
        self._replies[invocation_id] = reply
        self._replies.move_to_end(invocation_id)
        if expires_at is not None:
            self._expiry[invocation_id] = expires_at
        else:
            self._expiry.pop(invocation_id, None)
        self.purge_expired()
        while len(self._replies) > self.capacity:
            evicted, _ = self._replies.popitem(last=False)
            self._expiry.pop(evicted, None)
            self.evictions += 1

    def purge_expired(self) -> int:
        """Evict entries whose propagated deadline has passed.

        Capacity eviction is insertion-ordered and blind: under churn a
        burst of short-deadline traffic can push *live* entries out of
        the window while its own — unreplayable — replies stay cached.
        Eager expiry eviction keeps the window for entries a client
        might still legally claim.
        """
        if self.clock is None or not self._expiry:
            return 0
        now = self.clock.now
        stale = [invocation_id for invocation_id, at
                 in self._expiry.items() if at < now]
        for invocation_id in stale:
            del self._expiry[invocation_id]
            self._replies.pop(invocation_id, None)
            self.expired_evictions += 1
        return len(stale)

    def merge_from(self, other: "ReplyCache") -> int:
        """Union another node's entries into this cache (state handoff).

        A retransmission that crosses a migration cutover must still
        find its cached reply, or the new owner re-executes a write the
        old owner already applied (and whose effect travelled inside the
        state snapshot).  Invocation ids are globally unique
        (node/capsule-tagged), so the union cannot collide; existing
        entries win and the capacity bound still applies.  Returns the
        number of entries copied.
        """
        copied = 0
        for invocation_id, reply in other._replies.items():
            if invocation_id not in self._replies:
                self._replies[invocation_id] = reply
                if invocation_id in other._expiry:
                    self._expiry[invocation_id] = \
                        other._expiry[invocation_id]
                copied += 1
        while len(self._replies) > self.capacity:
            evicted, _ = self._replies.popitem(last=False)
            self._expiry.pop(evicted, None)
            self.evictions += 1
        return copied

    def stats(self) -> dict:
        """Counter snapshot for the management monitor."""
        return {
            "entries": len(self._replies),
            "capacity": self.capacity,
            "duplicates_suppressed": self.duplicates_suppressed,
            "replies_cached": self.replies_cached,
            "evictions": self.evictions,
            "expired_evictions": self.expired_evictions,
        }

    def clear(self) -> None:
        self._replies.clear()
        self._expiry.clear()

    def __len__(self) -> int:
        return len(self._replies)

    def __repr__(self) -> str:
        return (f"ReplyCache({len(self._replies)}/{self.capacity}, "
                f"suppressed={self.duplicates_suppressed})")
