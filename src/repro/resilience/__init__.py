"""Invocation resilience: the failure-transparency channel machinery.

Section 4.1: "catastrophic failures may occur which cannot be masked"
and the ODP programmer "has to think harder about error handling".  The
platform's job is to mask exactly the failures that *can* be masked —
without lying about the rest.  This package supplies the three
mechanisms the transport weaves into every invocation path:

* :class:`RetryPolicy` — exponential backoff with deterministic jitter,
  budget-capped by the invocation's QoS deadline, replacing the naive
  fixed-delay retransmission loop;
* :class:`CircuitBreaker` / :class:`BreakerRegistry` — per
  (node, protocol) closed/open/half-open breakers consulted during path
  selection, so repeated :class:`~repro.errors.NodeUnreachableError`\\ s
  stop hammering a dead path and fail over to the remaining access
  paths immediately;
* :class:`ReplyCache` — the server-side deduplicating reply cache that
  upgrades retransmission from at-least-once to exactly-once: a retry
  after a lost *reply* leg returns the cached termination instead of
  re-executing a non-idempotent operation.

Chaos scenarios that exercise all of this are declared as data with
:class:`~repro.net.fault.FaultSchedule` (re-exported here), and every
counter is surfaced through
:meth:`~repro.mgmt.monitor.TransparencyMonitor.domain_report`.
"""

from repro.net.fault import (
    CrashWindow,
    CutWindow,
    FaultSchedule,
    FlakyWindow,
    GrayWindow,
)
from repro.resilience.breaker import (
    BreakerRegistry,
    BreakerState,
    CircuitBreaker,
)
from repro.resilience.dedup import ReplyCache
from repro.resilience.retry import RetryPolicy
from repro.resilience.stats import ResilienceStats

__all__ = [
    "RetryPolicy",
    "CircuitBreaker",
    "BreakerRegistry",
    "BreakerState",
    "ReplyCache",
    "ResilienceStats",
    "FaultSchedule",
    "FlakyWindow",
    "CrashWindow",
    "GrayWindow",
    "CutWindow",
]
