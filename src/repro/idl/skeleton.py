"""Server-skeleton generation.

The code-generation direction of the paper's tooling story: "from a
description of the signatures of the operations in an interface, a
compiler can automatically generate code" (section 5.1).  The skeleton
is a ready-to-fill Python class whose ``@operation`` declarations match
the specification exactly, so the generated class passes
:func:`~repro.idl.check.check_implements` as soon as its bodies are
written.
"""

from __future__ import annotations

from typing import List

from repro.types.signature import InterfaceSignature, OperationSig
from repro.types.terms import (
    RecordType,
    RefType,
    SeqType,
    TypeTerm,
)

_PRIMITIVE_SPECS = {"int": "int", "float": "float", "str": "str",
                    "bool": "bool", "bytes": "bytes", "any": "'any'",
                    "void": "None"}


def _term_spec(term: TypeTerm) -> str:
    """Render a type term as the @operation spec expression."""
    if term.label in _PRIMITIVE_SPECS:
        return _PRIMITIVE_SPECS[term.label]
    if isinstance(term, SeqType):
        return f"[{_term_spec(term.element)}]"
    if isinstance(term, RecordType):
        inner = ", ".join(f"{name!r}: {_term_spec(t)}"
                          for name, t in term.fields)
        return "{" + inner + "}"
    if isinstance(term, RefType):
        # Skeletons cannot inline a whole signature; accept any ref and
        # leave a note for the implementer.
        return "'any'"
    raise ValueError(f"cannot render type term {term!r}")


def _operation_decorator(op: OperationSig) -> List[str]:
    pieces = []
    if op.params:
        pieces.append(
            "params=[" + ", ".join(_term_spec(p) for p in op.params) + "]")
    ok = op.termination("ok")
    if ok.results:
        pieces.append(
            "returns=[" + ", ".join(_term_spec(r) for r in ok.results)
            + "]")
    errors = {t.name: t.results for t in op.terminations
              if t.name != "ok"}
    if errors:
        inner = ", ".join(
            f"{name!r}: [" + ", ".join(_term_spec(r) for r in results)
            + "]"
            for name, results in errors.items())
        pieces.append("errors={" + inner + "}")
    if op.announcement:
        pieces.append("announcement=True")
    if op.readonly:
        pieces.append("readonly=True")
    return pieces


def generate_skeleton(signature: InterfaceSignature,
                      class_name: str = "") -> str:
    """Emit Python source for a server skeleton of *signature*."""
    class_name = class_name or f"{signature.name}Skeleton"
    lines = [
        f'"""Generated server skeleton for interface '
        f'{signature.name!r}."""',
        "",
        "from repro import OdpObject, Signal, operation",
        "",
        "",
        f"class {class_name}(OdpObject):",
        f'    """Fill in the operation bodies; the declarations already',
        f'    conform to the specification."""',
        "",
    ]
    for name in signature.operation_names():
        op = signature.operations[name]
        decorator_args = ", ".join(_operation_decorator(op))
        arg_names = [f"arg{i}" for i in range(len(op.params))]
        params = ", ".join(["self"] + arg_names)
        lines.append(f"    @operation({decorator_args})")
        lines.append(f"    def {name}({params}):")
        non_ok = [t.name for t in op.terminations if t.name != "ok"]
        if non_ok:
            lines.append(f"        # may raise Signal"
                         f"({non_ok[0]!r}, ...) "
                         + (f"or {non_ok[1:]}" if len(non_ok) > 1 else ""))
        lines.append("        raise NotImplementedError"
                     f"({name!r})")
        lines.append("")
    return "\n".join(lines)
