"""An interface definition language and its tooling.

Section 4.5: "ODP is concerned not just with runtime structures and
protocols, but also with the tools used to assemble, compile and link
programs" — and, crucially, "transparency requirements are expressed as
environment constraints within interface specifications".

This package provides exactly that tooling:

* :func:`parse_idl` — parse interface specifications, *including their
  environment-constraint clauses*, into
  (:class:`~repro.types.signature.InterfaceSignature`,
  :class:`~repro.comp.constraints.EnvironmentConstraints`) pairs;
* :func:`implements` — a class decorator verifying (structurally) that a
  Python implementation provides a declared interface;
* :func:`generate_skeleton` — emit a Python server-skeleton source for a
  declared interface (the "generated dispatcher" direction).

Example specification::

    interface Account requires concurrency, failure(checkpoint_every=5) {
        deposit(amount: int) -> (int);
        withdraw(amount: int) -> (int) | overdrawn(int);
        readonly balance_of() -> (int);
        announcement note(message: str);
    }
"""

from repro.idl.parser import parse_idl, IdlDocument, IdlError
from repro.idl.check import implements, check_implements
from repro.idl.skeleton import generate_skeleton
from repro.idl.render import render_idl, render_interface

__all__ = [
    "parse_idl",
    "IdlDocument",
    "IdlError",
    "implements",
    "check_implements",
    "generate_skeleton",
    "render_idl",
    "render_interface",
]
