"""Implementation conformance checking against declared interfaces.

"Early type checking reduces the risks of unpredictable behaviour"
(section 4.3) — here, at class-definition time: decorating an
implementation with ``@implements(doc["Account"])`` fails imports (not
deployments) when the code and the specification drift apart.
"""

from __future__ import annotations

from typing import List

from repro.comp.model import signature_of
from repro.errors import TypeCheckError
from repro.types.conformance import explain_mismatch
from repro.types.signature import InterfaceSignature


def check_implements(cls, declared: InterfaceSignature) -> List[str]:
    """All reasons *cls* fails to provide *declared* (empty = conforms)."""
    provided = signature_of(cls)
    problems = explain_mismatch(provided, declared)
    # Engineering annotations must agree too: a readonly declaration
    # drives lock modes, so an implementation that secretly writes under
    # a readonly operation would break isolation.
    for name, declared_op in declared.operations.items():
        provided_op = provided.operations.get(name)
        if provided_op is None:
            continue  # already reported by explain_mismatch
        if declared_op.readonly and not provided_op.readonly:
            problems.append(
                f"operation {name!r} is declared readonly but the "
                f"implementation does not mark it readonly")
    return problems


def implements(declared: InterfaceSignature):
    """Class decorator: assert the class provides *declared*.

    Raises :class:`~repro.errors.TypeCheckError` at class-definition
    time listing every mismatch.
    """

    def decorate(cls):
        problems = check_implements(cls, declared)
        if problems:
            raise TypeCheckError(
                f"{cls.__name__} does not implement "
                f"{declared.name!r}: " + "; ".join(problems))
        cls.__odp_implements__ = declared
        return cls

    return decorate
