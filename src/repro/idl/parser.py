"""The IDL parser.

Hand-written tokenizer + recursive descent.  Grammar (``//`` and ``#``
start comments; strings are single-quoted)::

    document    := interface*
    interface   := 'interface' NAME [ 'requires' req (',' req)* ]
                   '{' operation* '}'
    req         := NAME [ '(' NAME '=' literal (',' NAME '=' literal)* ')' ]
    operation   := ('readonly' | 'announcement')* NAME
                   '(' [ param (',' param)* ] ')' [ result ] ';'
    param       := NAME ':' type
    result      := '->' '(' [typelist] ')' ( '|' NAME '(' [typelist] ')' )*
    type        := 'int' | 'float' | 'str' | 'bool' | 'bytes' | 'any'
                 | 'seq' '<' type '>'
                 | 'record' '{' NAME ':' type (',' NAME ':' type)* '}'
                 | 'ref' '<' NAME '>'       -- a previously declared interface
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Tuple

from repro.comp.constraints import (
    EnvironmentConstraints,
    FailureSpec,
    ReplicationSpec,
    SecuritySpec,
)
from repro.errors import OdpError
from repro.types.signature import (
    InterfaceSignature,
    OperationSig,
    TerminationSig,
)
from repro.types.terms import (
    ANY,
    BOOL,
    BYTES,
    FLOAT,
    INT,
    RecordType,
    RefType,
    SeqType,
    STR,
    TypeTerm,
    VOID,
)


class IdlError(OdpError):
    """A syntax or semantic error in an interface specification."""


_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|\#[^\n]*)
  | (?P<arrow>->)
  | (?P<number>-?\d+\.\d+|-?\d+)
  | (?P<string>'[^']*')
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>[{}()<>|,;:=])
""", re.VERBOSE)

_PRIMITIVES: Dict[str, TypeTerm] = {
    "int": INT, "float": FLOAT, "str": STR, "bool": BOOL,
    "bytes": BYTES, "any": ANY, "void": VOID,
}

_KEYWORDS = {"interface", "requires", "readonly", "announcement",
             "seq", "record", "ref", "true", "false"}


def _tokenize(text: str) -> List[Tuple[str, str, int]]:
    tokens = []
    line = 1
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise IdlError(
                f"line {line}: unexpected character {text[position]!r}")
        kind = match.lastgroup
        value = match.group()
        line += value.count("\n")
        position = match.end()
        if kind in ("ws", "comment"):
            continue
        tokens.append((kind, value, line))
    tokens.append(("eof", "", line))
    return tokens


class IdlDocument:
    """The result of parsing: named interfaces plus their constraints."""

    def __init__(self) -> None:
        self._signatures: Dict[str, InterfaceSignature] = {}
        self._constraints: Dict[str, EnvironmentConstraints] = {}

    def add(self, name: str, signature: InterfaceSignature,
            constraints: EnvironmentConstraints) -> None:
        if name in self._signatures:
            raise IdlError(f"duplicate interface {name!r}")
        self._signatures[name] = signature
        self._constraints[name] = constraints

    def __getitem__(self, name: str) -> InterfaceSignature:
        try:
            return self._signatures[name]
        except KeyError:
            raise IdlError(f"no interface {name!r} in document") from None

    def __contains__(self, name: str) -> bool:
        return name in self._signatures

    def constraints(self, name: str) -> EnvironmentConstraints:
        self[name]  # existence check
        return self._constraints[name]

    @property
    def interfaces(self) -> List[str]:
        return sorted(self._signatures)


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str, int]]) -> None:
        self.tokens = tokens
        self.index = 0
        self.document = IdlDocument()

    # -- plumbing ------------------------------------------------------------

    def peek(self) -> Tuple[str, str, int]:
        return self.tokens[self.index]

    def advance(self) -> Tuple[str, str, int]:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def fail(self, message: str) -> None:
        kind, value, line = self.peek()
        raise IdlError(f"line {line}: {message} (found {value!r})")

    def expect_punct(self, char: str) -> None:
        kind, value, _ = self.advance()
        if kind != "punct" or value != char:
            self.index -= 1
            self.fail(f"expected {char!r}")

    def expect_name(self) -> str:
        kind, value, _ = self.advance()
        if kind != "name":
            self.index -= 1
            self.fail("expected a name")
        return value

    def at_punct(self, char: str) -> bool:
        kind, value, _ = self.peek()
        return kind == "punct" and value == char

    def at_name(self, word: Optional[str] = None) -> bool:
        kind, value, _ = self.peek()
        return kind == "name" and (word is None or value == word)

    # -- grammar --------------------------------------------------------------

    def parse(self) -> IdlDocument:
        while not self.peek()[0] == "eof":
            if not self.at_name("interface"):
                self.fail("expected 'interface'")
            self.advance()
            self._interface()
        return self.document

    def _interface(self) -> None:
        name = self.expect_name()
        constraints = EnvironmentConstraints.DEFAULT
        if self.at_name("requires"):
            self.advance()
            constraints = self._requirements()
        self.expect_punct("{")
        operations = []
        while not self.at_punct("}"):
            operations.append(self._operation())
        self.expect_punct("}")
        signature = InterfaceSignature(name, operations)
        self.document.add(name, signature, constraints)

    def _requirements(self) -> EnvironmentConstraints:
        selections: Dict[str, Any] = {}
        while True:
            req_name = self.expect_name()
            kwargs: Dict[str, Any] = {}
            if self.at_punct("("):
                self.advance()
                while not self.at_punct(")"):
                    key = self.expect_name()
                    self.expect_punct("=")
                    kwargs[key] = self._literal()
                    if self.at_punct(","):
                        self.advance()
                self.expect_punct(")")
            self._apply_requirement(selections, req_name, kwargs)
            if self.at_punct(","):
                self.advance()
                continue
            break
        return EnvironmentConstraints(**selections)

    def _apply_requirement(self, selections: Dict[str, Any],
                           name: str, kwargs: Dict[str, Any]) -> None:
        try:
            if name in ("concurrency", "location", "migration",
                        "resource", "federation"):
                selections[name] = True
            elif name == "no_local_shortcut":
                selections["allow_local_shortcut"] = False
            elif name == "failure":
                selections["failure"] = FailureSpec(**kwargs)
            elif name == "security":
                selections["security"] = SecuritySpec(**kwargs)
            elif name == "replication":
                selections["replication"] = ReplicationSpec(**kwargs)
            else:
                raise IdlError(
                    f"unknown transparency requirement {name!r}")
        except TypeError as exc:
            raise IdlError(
                f"bad parameters for requirement {name!r}: {exc}") from exc

    def _literal(self) -> Any:
        kind, value, _ = self.advance()
        if kind == "number":
            return float(value) if "." in value else int(value)
        if kind == "string":
            return value[1:-1]
        if kind == "name" and value in ("true", "false"):
            return value == "true"
        self.index -= 1
        self.fail("expected a literal")

    def _operation(self) -> OperationSig:
        readonly = False
        announcement = False
        while self.at_name("readonly") or self.at_name("announcement"):
            word = self.advance()[1]
            if word == "readonly":
                readonly = True
            else:
                announcement = True
        name = self.expect_name()
        self.expect_punct("(")
        params: List[TypeTerm] = []
        while not self.at_punct(")"):
            self.expect_name()  # parameter name: documentation only
            self.expect_punct(":")
            params.append(self._type())
            if self.at_punct(","):
                self.advance()
        self.expect_punct(")")

        terminations: Optional[List[TerminationSig]] = None
        if self.peek()[0] == "arrow":
            if announcement:
                self.fail("announcement operations cannot declare results")
            self.advance()
            terminations = [TerminationSig("ok", self._result_group())]
            while self.at_punct("|"):
                self.advance()
                term_name = self.expect_name()
                terminations.append(
                    TerminationSig(term_name, self._result_group()))
        self.expect_punct(";")
        return OperationSig(name, params, terminations,
                            announcement=announcement, readonly=readonly)

    def _result_group(self) -> List[TypeTerm]:
        self.expect_punct("(")
        results: List[TypeTerm] = []
        while not self.at_punct(")"):
            results.append(self._type())
            if self.at_punct(","):
                self.advance()
        self.expect_punct(")")
        return results

    def _type(self) -> TypeTerm:
        kind, value, _ = self.peek()
        if kind != "name":
            self.fail("expected a type")
        self.advance()
        if value in _PRIMITIVES:
            return _PRIMITIVES[value]
        if value == "seq":
            self.expect_punct("<")
            element = self._type()
            self.expect_punct(">")
            return SeqType(element)
        if value == "record":
            self.expect_punct("{")
            fields: Dict[str, TypeTerm] = {}
            while not self.at_punct("}"):
                field_name = self.expect_name()
                self.expect_punct(":")
                fields[field_name] = self._type()
                if self.at_punct(","):
                    self.advance()
            self.expect_punct("}")
            return RecordType(fields)
        if value == "ref":
            self.expect_punct("<")
            target = self.expect_name()
            self.expect_punct(">")
            if target not in self.document:
                raise IdlError(
                    f"ref<{target}>: interface {target!r} not declared "
                    f"earlier in the document")
            return RefType(self.document[target])
        raise IdlError(f"unknown type {value!r}")


def parse_idl(text: str) -> IdlDocument:
    """Parse an interface-specification document."""
    return _Parser(_tokenize(text)).parse()
