"""Rendering signatures back to IDL text.

The inverse of the parser: given a signature (and optionally its
environment constraints), emit the specification document.  This is what
lets a *running* system publish its interfaces in the interchange form —
the self-describing-system story (section 6) applied to the tooling: a
trader's type repository can be exported as an IDL document any other
organisation's tools can consume.

``parse_idl(render_idl(...))`` reconstructs the same signatures (checked
by property tests).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.comp.constraints import EnvironmentConstraints
from repro.types.signature import InterfaceSignature, OperationSig
from repro.types.terms import (
    RecordType,
    RefType,
    SeqType,
    TypeTerm,
)


def _render_type(term: TypeTerm, ref_names: Dict[int, str]) -> str:
    label = term.label
    if label in ("int", "float", "str", "bool", "bytes", "any", "void"):
        return label
    if isinstance(term, SeqType):
        return f"seq<{_render_type(term.element, ref_names)}>"
    if isinstance(term, RecordType):
        inner = ", ".join(f"{name}: {_render_type(t, ref_names)}"
                          for name, t in term.fields)
        return "record{" + inner + "}"
    if isinstance(term, RefType):
        name = ref_names.get(id(term.signature))
        if name is None:
            raise ValueError(
                "ref type targets an interface not in this document; "
                "render the target interface first")
        return f"ref<{name}>"
    raise ValueError(f"cannot render type term {term!r}")


def _render_operation(op: OperationSig,
                      ref_names: Dict[int, str]) -> str:
    qualifiers = ""
    if op.readonly:
        qualifiers += "readonly "
    if op.announcement:
        qualifiers += "announcement "
    params = ", ".join(
        f"arg{i}: {_render_type(p, ref_names)}"
        for i, p in enumerate(op.params))
    text = f"    {qualifiers}{op.name}({params})"
    if not op.announcement:
        groups = []
        for term in op.terminations:
            results = ", ".join(_render_type(r, ref_names)
                                for r in term.results)
            if term.name == "ok":
                groups.insert(0, f"({results})")
            else:
                groups.append(f"{term.name}({results})")
        text += " -> " + " | ".join(groups)
    return text + ";"


def _render_requirements(constraints: EnvironmentConstraints) -> str:
    clauses: List[str] = []
    if constraints.concurrency:
        clauses.append("concurrency")
    if constraints.migration:
        clauses.append("migration")
    if constraints.resource:
        clauses.append("resource")
    if constraints.failure is not None:
        spec = constraints.failure
        inner = f"checkpoint_every={spec.checkpoint_every}"
        if spec.recovery_node:
            inner += f", recovery_node='{spec.recovery_node}'"
        clauses.append(f"failure({inner})")
    if constraints.security is not None:
        spec = constraints.security
        clauses.append(
            f"security(policy='{spec.policy}', "
            f"require_authentication="
            f"{'true' if spec.require_authentication else 'false'}, "
            f"audit={'true' if spec.audit else 'false'})")
    if constraints.replication is not None:
        spec = constraints.replication
        clauses.append(
            f"replication(replicas={spec.replicas}, "
            f"policy='{spec.policy}', reply_quorum={spec.reply_quorum})")
    if not constraints.allow_local_shortcut:
        clauses.append("no_local_shortcut")
    if not clauses:
        return ""
    return " requires " + ", ".join(clauses)


def render_idl(interfaces: Iterable[Tuple[str, InterfaceSignature,
                                          Optional[EnvironmentConstraints]]]
               ) -> str:
    """Render (name, signature, constraints) triples as one document.

    Interfaces referenced by ``ref<>`` types must appear earlier in the
    iterable than their users (the parser's declaration-order rule).
    Constraints of ``None`` render no requires-clause.
    """
    ref_names: Dict[int, str] = {}
    blocks: List[str] = []
    for name, signature, constraints in interfaces:
        header = f"interface {name}"
        if constraints is not None:
            header += _render_requirements(constraints)
        lines = [header + " {"]
        for op_name in signature.operation_names():
            lines.append(_render_operation(signature.operations[op_name],
                                           ref_names))
        lines.append("}")
        blocks.append("\n".join(lines))
        ref_names[id(signature)] = name
    return "\n\n".join(blocks) + "\n"


def render_interface(name: str, signature: InterfaceSignature,
                     constraints: Optional[EnvironmentConstraints] = None
                     ) -> str:
    """Convenience: render a single interface."""
    return render_idl([(name, signature, constraints)])
