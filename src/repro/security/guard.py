"""Guards — generated interface police (paper section 7.1).

"For each interface of the object, a guard can be generated to police use
of that interface.  The guard must be included within the encapsulation
boundary of the secure object" — here, the guard is a server-side channel
layer that runs *before* the implementation method, inside the capsule.

The client-side :class:`CredentialLayer` is the matching piece: it attaches
the principal's MAC credentials to every outgoing invocation context.
"""

from __future__ import annotations

from typing import Optional

from repro.comp.invocation import Invocation
from repro.comp.outcomes import Termination
from repro.engine.layers import ClientLayer, ServerLayer
from repro.errors import AccessDeniedError, AuthenticationError
from repro.security.audit import AuditLog
from repro.security.policy import SecurityPolicy
from repro.security.secrets import SecretAuthority


class GuardLayer(ServerLayer):
    """Authenticates the caller and enforces the interface's policy."""

    name = "guard"

    def __init__(self, policy: SecurityPolicy, authority: SecretAuthority,
                 audit: Optional[AuditLog] = None,
                 require_authentication: bool = True,
                 clock=None) -> None:
        self.policy = policy
        self.authority = authority
        self.audit = audit
        self.require_authentication = require_authentication
        self.clock = clock
        self.allowed = 0
        self.denied = 0

    def _now(self) -> float:
        return self.clock.now if self.clock is not None else 0.0

    def _log(self, invocation: Invocation, interface, allowed: bool,
             reason: str) -> None:
        if self.audit is not None:
            self.audit.record(self._now(), interface.interface_id,
                              invocation.operation,
                              invocation.context.principal, allowed, reason)

    #: Virtual-ms charged per MAC verification (simulated crypto cost).
    VERIFY_COST_MS = 0.08

    def handle(self, invocation: Invocation, interface,
               next_layer) -> Termination:
        principal = invocation.context.principal
        if self.clock is not None and self.require_authentication:
            self.clock.advance(self.VERIFY_COST_MS)
        if self.require_authentication:
            try:
                self.authority.verify(principal or "",
                                      invocation.context.credentials)
            except AuthenticationError as exc:
                self.denied += 1
                self._log(invocation, interface, False, str(exc))
                raise
        if not self.policy.permits(invocation.operation, principal):
            self.denied += 1
            reason = (f"policy {self.policy.name!r} denies "
                      f"{invocation.operation!r} to {principal!r}")
            self._log(invocation, interface, False, reason)
            raise AccessDeniedError(reason)
        self.allowed += 1
        self._log(invocation, interface, True, "permitted")
        return next_layer(invocation)


class CredentialLayer(ClientLayer):
    """Attaches the bound principal's credentials to each invocation."""

    name = "credentials"

    def __init__(self, authority: SecretAuthority) -> None:
        self.authority = authority

    def request(self, invocation: Invocation, next_layer) -> Termination:
        principal = invocation.context.principal
        if principal and not invocation.context.credentials:
            invocation.context.credentials = \
                self.authority.credentials_for(principal)
        return next_layer(invocation)
