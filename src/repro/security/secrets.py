"""Shared-secret management and MAC credentials.

The authority enrols principals with per-principal secrets; a credential is
an HMAC over the principal name keyed by that secret.  Because "it is
possible for any object to assemble a reference, ... a secure object must
check that any access is from a valid source" — the guard verifies the MAC
rather than trusting the reference or the claimed principal name.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Dict

from repro.errors import AuthenticationError


class SecretAuthority:
    """Per-domain issuer and verifier of shared-secret credentials."""

    def __init__(self, domain_name: str) -> None:
        self.domain_name = domain_name
        self._secrets: Dict[str, bytes] = {}
        self.verifications = 0
        self.rejections = 0

    def enrol(self, principal: str, secret: bytes = b"") -> bytes:
        """Register a principal; derive a secret if none supplied."""
        if not secret:
            secret = hashlib.sha256(
                f"{self.domain_name}:{principal}".encode("utf-8")).digest()
        self._secrets[principal] = secret
        return secret

    def is_enrolled(self, principal: str) -> bool:
        return principal in self._secrets

    def revoke(self, principal: str) -> None:
        self._secrets.pop(principal, None)

    def _token(self, principal: str, secret: bytes) -> str:
        mac = hmac.new(secret,
                       f"{self.domain_name}:{principal}".encode("utf-8"),
                       hashlib.sha256)
        return mac.hexdigest()

    def credentials_for(self, principal: str) -> Dict[str, str]:
        """Credentials a client attaches to its invocation contexts."""
        secret = self._secrets.get(principal)
        if secret is None:
            return {}
        return {self.domain_name: self._token(principal, secret)}

    def verify(self, principal: str, credentials: Dict[str, str]) -> None:
        """Raise :class:`AuthenticationError` unless the MAC checks out."""
        self.verifications += 1
        secret = self._secrets.get(principal or "")
        if secret is None:
            self.rejections += 1
            raise AuthenticationError(
                f"principal {principal!r} is not enrolled in domain "
                f"{self.domain_name}")
        presented = credentials.get(self.domain_name)
        expected = self._token(principal, secret)
        if presented is None or not hmac.compare_digest(presented, expected):
            self.rejections += 1
            raise AuthenticationError(
                f"invalid credentials for principal {principal!r} in "
                f"domain {self.domain_name}")
