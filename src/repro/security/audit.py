"""Audit trail for guard decisions.

The enterprise language (section 8) motivates auditing: "contractual
interactions should be subject to audit".  Guards append allow/deny records
here; management and the enterprise-modelling examples read them back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class AuditRecord:
    time: float
    domain: str
    interface_id: str
    operation: str
    principal: Optional[str]
    allowed: bool
    reason: str = ""


class AuditLog:
    """Append-only log of security decisions for one domain."""

    def __init__(self, domain_name: str, capacity: int = 100_000) -> None:
        self.domain_name = domain_name
        self.capacity = capacity
        self._records: List[AuditRecord] = []

    def record(self, time: float, interface_id: str, operation: str,
               principal: Optional[str], allowed: bool,
               reason: str = "") -> None:
        if len(self._records) >= self.capacity:
            self._records.pop(0)
        self._records.append(AuditRecord(
            time, self.domain_name, interface_id, operation, principal,
            allowed, reason))

    def records(self, principal: Optional[str] = None,
                allowed: Optional[bool] = None) -> List[AuditRecord]:
        found = self._records
        if principal is not None:
            found = [r for r in found if r.principal == principal]
        if allowed is not None:
            found = [r for r in found if r.allowed == allowed]
        return list(found)

    def denials(self) -> List[AuditRecord]:
        return self.records(allowed=False)

    def __len__(self) -> int:
        return len(self._records)
