"""Declarative security policies.

A policy maps operations to the principals allowed to invoke them.  Guards
are *generated* from these declarations (section 7.1: "another example of
the kind of engineering detail which can be generated automatically from a
declarative statement of security policy").
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

#: Wildcards accepted in policy declarations.
ANY_OP = "*"
ANY_PRINCIPAL = "*"


class SecurityPolicy:
    """Operation -> allowed principals, with wildcard support."""

    def __init__(self, name: str,
                 rules: Optional[Dict[str, Iterable[str]]] = None,
                 default_allow: bool = False) -> None:
        self.name = name
        self.default_allow = default_allow
        self._rules: Dict[str, Set[str]] = {
            op: set(principals) for op, principals in (rules or {}).items()
        }

    def allow(self, operation: str, principal: str) -> None:
        self._rules.setdefault(operation, set()).add(principal)

    def deny_all(self, operation: str) -> None:
        self._rules[operation] = set()

    def permits(self, operation: str, principal: Optional[str]) -> bool:
        """Does the policy let *principal* invoke *operation*?"""
        for key in (operation, ANY_OP):
            allowed = self._rules.get(key)
            if allowed is not None:
                return (ANY_PRINCIPAL in allowed
                        or (principal is not None and principal in allowed))
        return self.default_allow

    def __repr__(self) -> str:
        return f"SecurityPolicy({self.name!r}, {len(self._rules)} rules)"


class PolicyStore:
    """Per-domain registry of named policies."""

    def __init__(self) -> None:
        self._policies: Dict[str, SecurityPolicy] = {}
        # The built-in default policy denies everything except what a
        # deployment explicitly allows.
        self.register(SecurityPolicy("default", default_allow=False))
        self.register(SecurityPolicy("open", default_allow=True))

    def register(self, policy: SecurityPolicy) -> SecurityPolicy:
        self._policies[policy.name] = policy
        return policy

    def get(self, name: str) -> SecurityPolicy:
        try:
            return self._policies[name]
        except KeyError:
            raise KeyError(f"no security policy named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._policies
