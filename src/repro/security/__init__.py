"""Security (paper section 7.1).

"Security in a distributed system is founded upon trusted encapsulation and
the management of shared secrets between objects."  Each domain runs a
secret authority; principals hold shared secrets; invocations carry MAC
credentials; and *guards* — generated from declarative policy statements —
police each interface from inside its encapsulation boundary.
"""

from repro.security.secrets import SecretAuthority
from repro.security.policy import SecurityPolicy, PolicyStore
from repro.security.guard import GuardLayer, CredentialLayer
from repro.security.audit import AuditLog, AuditRecord

__all__ = [
    "SecretAuthority",
    "SecurityPolicy",
    "PolicyStore",
    "GuardLayer",
    "CredentialLayer",
    "AuditLog",
    "AuditRecord",
]
