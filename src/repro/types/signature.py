"""Interface signatures.

Section 5.1 requires that each operation "be permitted to have a range of
possible outcomes, each one of which carries its own package of results" —
so an operation signature is a set of named *terminations*, each with its
own result types, rather than a single return type.  Interfaces come in two
kinds: OPERATIONAL (ADT operations) and STREAM (continuous flows, section
7.2), which share trading and reference-passing but not invocation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.errors import SignatureError
from repro.types.terms import TypeTerm, parse_type

OPERATIONAL = "operational"
STREAM = "stream"

#: Name of the conventional success termination.
OK = "ok"


class TerminationSig:
    """One possible outcome of an operation, with typed results."""

    def __init__(self, name: str, results: Iterable = ()) -> None:
        if not name or not isinstance(name, str):
            raise SignatureError("termination name must be a non-empty str")
        self.name = name
        self.results: Tuple[TypeTerm, ...] = tuple(
            parse_type(r) for r in results)

    def __repr__(self) -> str:
        inner = ", ".join(repr(r) for r in self.results)
        return f"{self.name}({inner})"

    def __eq__(self, other) -> bool:
        return (isinstance(other, TerminationSig)
                and self.name == other.name
                and self.results == other.results)

    def __hash__(self) -> int:
        return hash((self.name, self.results))


class OperationSig:
    """A named operation: parameter types plus its set of terminations."""

    def __init__(self, name: str, params: Iterable = (),
                 terminations: Optional[Iterable[TerminationSig]] = None,
                 announcement: bool = False,
                 readonly: bool = False) -> None:
        if not name or not isinstance(name, str):
            raise SignatureError("operation name must be a non-empty str")
        self.name = name
        #: Engineering annotation (not part of structural identity): a
        #: read-only operation takes shared rather than exclusive locks
        #: under concurrency transparency (a "separation constraint",
        #: section 5.2).
        self.readonly = readonly
        self.params: Tuple[TypeTerm, ...] = tuple(
            parse_type(p) for p in params)
        terms = tuple(terminations) if terminations else (
            TerminationSig(OK, ()),)
        names = [t.name for t in terms]
        if len(set(names)) != len(names):
            raise SignatureError(
                f"duplicate termination names in operation {name!r}")
        self.terminations: Tuple[TerminationSig, ...] = terms
        #: True for request-only (Announcement) operations: no reply at all,
        #: so exactly one result-less termination is permitted.
        self.announcement = announcement
        if announcement:
            if len(terms) != 1 or terms[0].results:
                raise SignatureError(
                    f"announcement operation {name!r} cannot carry results")

    def termination(self, name: str) -> TerminationSig:
        for term in self.terminations:
            if term.name == name:
                return term
        raise SignatureError(
            f"operation {self.name!r} has no termination {name!r}")

    def termination_names(self) -> Tuple[str, ...]:
        return tuple(t.name for t in self.terminations)

    def __repr__(self) -> str:
        params = ", ".join(repr(p) for p in self.params)
        terms = " | ".join(repr(t) for t in self.terminations)
        prefix = "announcement " if self.announcement else ""
        return f"{prefix}{self.name}({params}) -> {terms}"

    def __eq__(self, other) -> bool:
        return (isinstance(other, OperationSig)
                and self.name == other.name
                and self.params == other.params
                and self.terminations == other.terminations
                and self.announcement == other.announcement)

    def __hash__(self) -> int:
        return hash((self.name, self.params, self.terminations,
                     self.announcement))


class InterfaceSignature:
    """The set of operations offered at one interface.

    ``name`` is documentation only — conformance never consults it
    (signature checking is structural).
    """

    def __init__(self, name: str,
                 operations: Iterable[OperationSig] = (),
                 kind: str = OPERATIONAL) -> None:
        if kind not in (OPERATIONAL, STREAM):
            raise SignatureError(f"unknown interface kind {kind!r}")
        self.name = name
        self.kind = kind
        ops: Dict[str, OperationSig] = {}
        for op in operations:
            if op.name in ops:
                raise SignatureError(f"duplicate operation {op.name!r}")
            ops[op.name] = op
        self.operations: Dict[str, OperationSig] = ops

    def operation(self, name: str) -> OperationSig:
        try:
            return self.operations[name]
        except KeyError:
            raise SignatureError(
                f"interface {self.name!r} has no operation {name!r}"
            ) from None

    def operation_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self.operations))

    def restrict(self, names: Iterable[str]) -> "InterfaceSignature":
        """A narrower signature containing only *names* (view/projection)."""
        return InterfaceSignature(
            f"{self.name}#restricted",
            [self.operation(n) for n in names],
            kind=self.kind)

    def describe(self) -> str:
        ops = ";".join(repr(self.operations[n])
                       for n in self.operation_names())
        return f"{self.kind}:{{{ops}}}"

    def __repr__(self) -> str:
        return f"InterfaceSignature({self.name!r}, {len(self.operations)} ops)"

    def __eq__(self, other) -> bool:
        return (isinstance(other, InterfaceSignature)
                and self.kind == other.kind
                and self.operations == other.operations)

    def __hash__(self) -> int:
        return hash((self.kind, tuple(sorted(self.operations.items(),
                                             key=lambda kv: kv[0]))))
