"""Runtime value/type matching.

Used by the server-side type-check layer ("for maximum safety, all accesses
must be type checked", section 4.3) to validate that the values arriving in
an invocation actually inhabit the declared parameter types, and by the
client proxy to validate results during strict testing.
"""

from __future__ import annotations

from typing import Any

from repro.comp.reference import InterfaceRef
from repro.types.conformance import signature_conforms
from repro.types.terms import (
    ANY,
    BOOL,
    BYTES,
    FLOAT,
    INT,
    RecordType,
    RefType,
    SeqType,
    STR,
    TypeTerm,
    VOID,
)
from repro.util.freeze import FrozenRecord


def value_matches(value: Any, term: TypeTerm) -> bool:
    """True when *value* inhabits *term*."""
    if term is ANY:
        return True
    if term is VOID:
        return value is None
    if term is BOOL:
        return isinstance(value, bool)
    if term is INT:
        return isinstance(value, int) and not isinstance(value, bool)
    if term is FLOAT:
        return (isinstance(value, float)
                or (isinstance(value, int) and not isinstance(value, bool)))
    if term is STR:
        return isinstance(value, str)
    if term is BYTES:
        return isinstance(value, bytes)
    if isinstance(term, SeqType):
        if not isinstance(value, (list, tuple)):
            return False
        return all(value_matches(v, term.element) for v in value)
    if isinstance(term, RecordType):
        if isinstance(value, FrozenRecord):
            getter = value.get
            has = value.__contains__
        elif isinstance(value, dict):
            getter = value.get
            has = value.__contains__
        else:
            return False
        for name, field_term in term.fields:
            if not has(name) or not value_matches(getter(name), field_term):
                return False
        return True
    if isinstance(term, RefType):
        return (isinstance(value, InterfaceRef)
                and signature_conforms(value.signature, term.signature))
    return False


def describe_mismatch(value: Any, term: TypeTerm) -> str:
    return (f"value {value!r} of Python type {type(value).__name__} does "
            f"not inhabit ADT type {term!r}")
