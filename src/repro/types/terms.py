"""Type terms for ADT values.

The paper models even primitive data (integers, strings) as ADTs whose state
is constant, which is what licenses the engineering optimisation of copying
them across the network (section 4.5).  A :class:`TypeTerm` describes the
shape of a value that may cross an interface: a primitive, a sequence, a
record, or a *reference* to another interface (``RefType``).

Terms are immutable and hashable so they can appear inside signatures,
trader offers and wire headers.
"""

from __future__ import annotations

from typing import Dict, Tuple


class TypeTerm:
    """Base class for all type terms."""

    label = "type"

    def __repr__(self) -> str:
        return self.label

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and repr(self) == repr(other)

    def __hash__(self) -> int:
        return hash(repr(self))


class _Primitive(TypeTerm):
    def __init__(self, label: str) -> None:
        self.label = label


#: Matches any value (top type).
ANY = _Primitive("any")
#: No value (operations/terminations with no results).
VOID = _Primitive("void")
BOOL = _Primitive("bool")
INT = _Primitive("int")
FLOAT = _Primitive("float")
STR = _Primitive("str")
BYTES = _Primitive("bytes")

_PRIMITIVES: Dict[str, TypeTerm] = {
    p.label: p for p in (ANY, VOID, BOOL, INT, FLOAT, STR, BYTES)
}


class SeqType(TypeTerm):
    """Homogeneous sequence of *element* values."""

    def __init__(self, element: TypeTerm) -> None:
        if not isinstance(element, TypeTerm):
            raise TypeError("SeqType element must be a TypeTerm")
        self.element = element
        self.label = f"seq<{element!r}>"


class RecordType(TypeTerm):
    """A record with named, typed fields (order-insensitive)."""

    def __init__(self, fields: Dict[str, TypeTerm]) -> None:
        for name, term in fields.items():
            if not isinstance(term, TypeTerm):
                raise TypeError(f"field {name!r} must be a TypeTerm")
        self.fields: Tuple[Tuple[str, TypeTerm], ...] = tuple(
            sorted(fields.items()))
        inner = ", ".join(f"{n}: {t!r}" for n, t in self.fields)
        self.label = f"record<{inner}>"

    def field_map(self) -> Dict[str, TypeTerm]:
        return dict(self.fields)


class RefType(TypeTerm):
    """A reference to an interface with the given signature.

    The signature import is deferred to avoid a cycle: signatures contain
    type terms and RefType contains a signature.
    """

    def __init__(self, signature) -> None:
        from repro.types.signature import InterfaceSignature

        if not isinstance(signature, InterfaceSignature):
            raise TypeError("RefType requires an InterfaceSignature")
        self.signature = signature
        self.label = f"ref<{signature.describe()}>"


def parse_type(spec) -> TypeTerm:
    """Convert a convenient spec into a :class:`TypeTerm`.

    Accepts an existing term, a primitive name (``"int"``), a Python type
    (``int``), a one-element list (sequence), or a dict (record).  This is
    the notation the ``@operation`` decorator and trader queries use.
    """
    if isinstance(spec, TypeTerm):
        return spec
    if isinstance(spec, str):
        try:
            return _PRIMITIVES[spec]
        except KeyError:
            raise ValueError(f"unknown primitive type {spec!r}") from None
    if spec is None:
        return VOID
    if spec is bool:
        return BOOL
    if spec is int:
        return INT
    if spec is float:
        return FLOAT
    if spec is str:
        return STR
    if spec is bytes:
        return BYTES
    if isinstance(spec, list):
        if len(spec) != 1:
            raise ValueError("sequence spec must be a one-element list")
        return SeqType(parse_type(spec[0]))
    if isinstance(spec, dict):
        return RecordType({k: parse_type(v) for k, v in spec.items()})
    raise ValueError(f"cannot interpret type spec {spec!r}")
