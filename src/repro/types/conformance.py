"""Structural conformance checking.

The rule (section 5.1): "if the interface type includes the operations
required by the client (with appropriate arguments and outcomes) it is
suitable."  Concretely, signature P (provided) conforms to signature R
(required) when, for every operation in R:

* P offers an operation of the same name and arity,
* each parameter type is **contravariant** (P must accept at least what the
  client will send: R's param conforms to P's param),
* every termination P can produce is one R expects (name subset), and each
  result type is **covariant** (what P returns conforms to what the client
  will handle),
* announcement-ness matches (a client expecting a reply cannot use a
  request-only operation and vice versa).

P may offer *extra* operations — that is exactly the width subtyping that
lets systems evolve without breaking old clients.
"""

from __future__ import annotations

from typing import List, Optional

from repro.types.signature import InterfaceSignature, OperationSig
from repro.types.terms import (
    ANY,
    FLOAT,
    INT,
    RecordType,
    RefType,
    SeqType,
    TypeTerm,
)


def conforms(provided: TypeTerm, required: TypeTerm) -> bool:
    """True when a value of type *provided* is usable as *required*."""
    if required is ANY:
        return True
    if provided is ANY:
        # An 'any' source can only flow into an 'any' sink safely.
        return required is ANY
    if provided == required:
        return True
    # Numeric widening: an int ADT value behaves as a float ADT value.
    if provided is INT and required is FLOAT:
        return True
    if isinstance(provided, SeqType) and isinstance(required, SeqType):
        return conforms(provided.element, required.element)
    if isinstance(provided, RecordType) and isinstance(required, RecordType):
        have = provided.field_map()
        for name, req_term in required.field_map().items():
            if name not in have or not conforms(have[name], req_term):
                return False
        return True  # width subtyping: extra fields are fine
    if isinstance(provided, RefType) and isinstance(required, RefType):
        return signature_conforms(provided.signature, required.signature)
    return False


def _operation_conforms(provided: OperationSig,
                        required: OperationSig) -> Optional[str]:
    """None when compatible, else a human-readable reason."""
    if provided.announcement != required.announcement:
        return (f"operation {required.name!r}: announcement/interrogation "
                f"mismatch")
    if len(provided.params) != len(required.params):
        return (f"operation {required.name!r}: arity {len(provided.params)} "
                f"!= required {len(required.params)}")
    for index, (p_term, r_term) in enumerate(
            zip(provided.params, required.params)):
        if not conforms(r_term, p_term):  # contravariant
            return (f"operation {required.name!r} param {index}: client "
                    f"sends {r_term!r} but server accepts {p_term!r}")
    expected = {t.name: t for t in required.terminations}
    for term in provided.terminations:
        if term.name not in expected:
            return (f"operation {required.name!r}: server may produce "
                    f"unexpected termination {term.name!r}")
        want = expected[term.name]
        if len(term.results) != len(want.results):
            return (f"operation {required.name!r} termination "
                    f"{term.name!r}: result arity mismatch")
        for index, (p_res, r_res) in enumerate(
                zip(term.results, want.results)):
            if not conforms(p_res, r_res):  # covariant
                return (f"operation {required.name!r} termination "
                        f"{term.name!r} result {index}: {p_res!r} does not "
                        f"conform to {r_res!r}")
    return None


def explain_mismatch(provided: InterfaceSignature,
                     required: InterfaceSignature) -> List[str]:
    """All reasons *provided* fails to conform to *required* (empty = ok)."""
    reasons: List[str] = []
    if provided.kind != required.kind:
        reasons.append(
            f"interface kind {provided.kind!r} != {required.kind!r}")
        return reasons
    for name, req_op in required.operations.items():
        prov_op = provided.operations.get(name)
        if prov_op is None:
            reasons.append(f"missing operation {name!r}")
            continue
        problem = _operation_conforms(prov_op, req_op)
        if problem is not None:
            reasons.append(problem)
    return reasons


def signature_conforms(provided: InterfaceSignature,
                       required: InterfaceSignature) -> bool:
    """True when *provided* can stand in for *required*."""
    return not explain_mismatch(provided, required)
