"""The ODP computational type system.

Abstract data types are the foundation of the paper's computational model
(section 4.4).  Types here are *structural*: an interface is acceptable
wherever its signature provides at least the operations the client requires
(section 5.1 — "type checking [is] based on interface signature checking ...
the alternative is to name types and declare type name hierarchies; however
this fails to meet the requirements for federation and evolution").
"""

from repro.types.terms import (
    TypeTerm,
    ANY,
    VOID,
    BOOL,
    INT,
    FLOAT,
    STR,
    BYTES,
    SeqType,
    RecordType,
    RefType,
    parse_type,
)
from repro.types.signature import (
    TerminationSig,
    OperationSig,
    InterfaceSignature,
    OPERATIONAL,
    STREAM,
)
from repro.types.conformance import conforms, signature_conforms, explain_mismatch

__all__ = [
    "TypeTerm",
    "ANY",
    "VOID",
    "BOOL",
    "INT",
    "FLOAT",
    "STR",
    "BYTES",
    "SeqType",
    "RecordType",
    "RefType",
    "parse_type",
    "TerminationSig",
    "OperationSig",
    "InterfaceSignature",
    "OPERATIONAL",
    "STREAM",
    "conforms",
    "signature_conforms",
    "explain_mismatch",
]
