"""C7 — Relocation: register changes only; clients repair transparently.

Claims (section 5.4): "relocation mechanisms should only require the
registration of changes in location because the majority of interfaces in
a system can be expected to be temporary and stationary"; stale clients
rebind without application involvement.

Series produced:
  * relocation-registry traffic for a stationary population (should be
    one registration each, zero updates, zero lookups),
  * per-invocation overhead when the server migrates every k
    invocations, k in {2, 5, 10, 50} — the repair amortisation curve,
  * hint-repair vs relocator-lookup repair cost.
Expected shape: stationary objects cost nothing; overhead decays as
migrations get rarer; forward hints beat registry lookups.
"""

import pytest

from benchmarks.workloads import Counter, as_report, n_node_world, write_report

CALLS = 100


def _migrating_run(every, leave_forward=True, calls=CALLS):
    world, capsules, clients = n_node_world(3)
    domain = world.domain("org")
    ref = capsules[0].export(Counter())
    proxy = world.binder_for(clients).bind(ref)
    home = 0
    start = world.now
    for i in range(1, calls + 1):
        proxy.increment()
        if every and i % every == 0:
            target = (home + 1) % 3
            domain.migrator.migrate(capsules[home], ref.interface_id,
                                    capsules[target],
                                    leave_forward=leave_forward)
            home = target
    elapsed = world.now - start
    layer = proxy._channel.layers[-1]
    return world, domain, elapsed / calls, layer


@pytest.mark.parametrize("every", [0, 10, 2])
def test_c7_migration_frequency(benchmark, every):
    benchmark.group = "C7 migration frequency"
    benchmark(lambda: _migrating_run(every, calls=40))


def test_c7_report(benchmark):
    as_report(benchmark, _report)


def _report():
    rows = ["-- stationary population: registration of changes only --"]
    world, capsules, clients = n_node_world(2)
    domain = world.domain("org")
    binder = world.binder_for(clients)
    proxies = [binder.bind(capsules[i % 2].export(Counter()))
               for i in range(20)]
    for _ in range(5):
        for proxy in proxies:
            proxy.increment()
    relocator = domain.relocator
    rows.append(f"  20 interfaces, 100 invocations: "
                f"registrations={relocator.registrations}, "
                f"updates={relocator.updates}, "
                f"lookups={relocator.lookups}")
    assert relocator.registrations == 20
    assert relocator.updates == 0
    assert relocator.lookups == 0

    rows.append("-- overhead vs migration interval k --")
    baseline = _migrating_run(0)[2]
    rows.append(f"  stationary: {baseline:8.4f} virtual ms/call")
    overheads = {}
    for every in (50, 10, 5, 2):
        per_call = _migrating_run(every)[2]
        overheads[every] = per_call - baseline
        rows.append(f"  k={every:>2}: {per_call:8.4f} virtual ms/call "
                    f"(+{overheads[every]:.4f})")
    assert overheads[2] > overheads[50]

    rows.append("-- repair source: forward hint vs relocator lookup --")
    for label, forward in (("forward-hint", True),
                           ("relocator-lookup", False)):
        world, domain, per_call, layer = _migrating_run(
            5, leave_forward=forward)
        rows.append(f"  {label:>17}: {per_call:8.4f} virtual ms/call, "
                    f"hint repairs={layer.hint_repairs}, "
                    f"lookup repairs={layer.lookup_repairs}")
    write_report("C7", "relocation: change-only registration and "
                       "transparent repair (section 5.4)", rows)
