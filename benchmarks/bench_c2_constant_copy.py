"""C2 — Constant-state copy optimisation (paper section 4.5).

Claim: "objects which have constant state can be copied without breaking
computational semantics ... such types can be copied across network links
that support concrete representations of them, in place of interface
references."

Series produced: cost of passing an argument by constant-copy versus the
strict by-reference alternative (implicit export + a call-back to read
the value), for several payload shapes.
Expected shape: copy is cheaper than by-reference for every payload, and
dramatically cheaper once the reader must call back.
"""

from repro import OdpObject, operation

from benchmarks.workloads import as_report, two_node_world, write_report

ROUNDS = 100


class Box(OdpObject):
    """A mutable ADT wrapping a value: the by-reference vehicle."""

    def __init__(self, value=None):
        self.value = value

    @operation(returns=["any"], readonly=True)
    def get(self):
        return self.value


class Consumer(OdpObject):
    """Receives either a copied value or a reference and uses it."""

    def __init__(self, binder):
        self._binder = binder
        self.total = 0

    @operation(params=["any"], returns=[int])
    def use_copy(self, value):
        self.total += len(str(value))
        return self.total

    @operation(params=["any"], returns=[int])
    def use_ref(self, ref):
        box = self._binder.bind(ref)
        value = box.get()  # the call-back the copy avoids
        self.total += len(str(value))
        return self.total


PAYLOADS = {
    "int": 12345,
    "string-1k": "x" * 1000,
    "record": {"name": "widget", "price": 250, "tags": ("a", "b")},
}


def _build():
    world, servers, clients = two_node_world()
    server_binder = world.binder_for(servers)
    consumer_ref = servers.export(Consumer(server_binder))
    proxy = world.binder_for(clients).bind(consumer_ref)
    return world, clients, proxy


def _copy_round(world, clients, proxy, payload):
    proxy.use_copy(payload)


def _ref_round(world, clients, proxy, payload):
    box = Box(payload)  # mutable -> implicitly exported, sent by ref
    proxy.use_ref(box)


def test_c2_pass_by_copy(benchmark):
    benchmark.group = "C2 argument passing"
    world, clients, proxy = _build()
    benchmark(lambda: _copy_round(world, clients, proxy,
                                  PAYLOADS["record"]))


def test_c2_pass_by_reference(benchmark):
    benchmark.group = "C2 argument passing"
    world, clients, proxy = _build()
    benchmark(lambda: _ref_round(world, clients, proxy,
                                 PAYLOADS["record"]))


def test_c2_report(benchmark):
    as_report(benchmark, lambda: _report())


def _report():
    rows = []
    for name, payload in PAYLOADS.items():
        timings = {}
        for mode, round_fn in (("copy", _copy_round),
                               ("by-ref", _ref_round)):
            world, clients, proxy = _build()
            start, msgs = world.now, world.network.total_messages
            for _ in range(ROUNDS):
                round_fn(world, clients, proxy, payload)
            timings[mode] = {
                "ms": (world.now - start) / ROUNDS,
                "msgs": (world.network.total_messages - msgs) / ROUNDS,
            }
        rows.append(
            f"{name:>10}: copy {timings['copy']['ms']:7.4f} ms "
            f"({timings['copy']['msgs']:.0f} msgs)   by-ref "
            f"{timings['by-ref']['ms']:7.4f} ms "
            f"({timings['by-ref']['msgs']:.0f} msgs)")
        # Shape: constant-state copy beats the reference + call-back.
        assert timings["copy"]["ms"] < timings["by-ref"]["ms"]
        assert timings["copy"]["msgs"] < timings["by-ref"]["msgs"]
    write_report("C2", "constant-state copy vs pass-by-reference "
                       "(section 4.5)", rows)
