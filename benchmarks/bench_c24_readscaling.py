"""C24 — Read scaling for hot objects: leases, caching, follower reads.

Claim (sections 2.3 and 5): the expensive general mechanism — every
interrogation a full remote invocation — is only the *default*; an
interface whose traffic is read-mostly can be promoted to a cheaper
regime without changing its clients.  ``repro.lease`` is that regime:
replicas serve follower reads, and clients cache results under
epoch-of-validity leases whose invalidation fan-out keeps staleness
inside the TTL.  Two measurements:

  * **Read scaling.**  A 3-way replicated kv group serves fleets of 1,
    4 and 16 client nodes, each driving the same Zipfian read sequence
    with a fixed 1-in-50 write rate, uncached vs cached.  The simulator
    executes serially, so aggregate throughput is *derived* from the
    measured per-node load (the C14/C21 discipline): the busiest node
    bounds the fleet's makespan, so speedup = total reads / busiest
    node's reads — cache hits are load on the *client's* node, misses
    and follower reads land on the members.  Expected: uncached plateaus
    at ~3x (three replicas is the ceiling follower reads alone reach),
    cached scales with the client count because hot reads never leave
    their node — >= 3x the uncached aggregate at 16 clients.

  * **Invalidation storm (worst case).**  The flip side of promotion:
    16 caches all hold the same hot key and a burst of writes lands on
    it.  Every write fans one post to every live holder (O(writes x
    holders) messages), every cache refetches, and the skipped-fill
    guard makes reconvergence take *two* read rounds (the first refill
    races the pending record).  The storm table prints the measured
    fan-out, refetch misses and reconvergence time — the cost a
    demotion policy weighs against the read-side savings.
"""

import bisect

import pytest

from repro import ReplicationSpec
from repro.runtime import World

from benchmarks.workloads import as_report, write_report
from tests.conftest import KvStore

ZIPF_S = 0.9
KEYS = 40
READS_PER_CLIENT = 100
WRITE_EVERY = 50          # one write per 50 reads, fleet-wide
CLIENTS = (1, 4, 16)
TTL_MS = 10_000.0
GROUP_ID = "bench.kv"


def _zipf_cdf():
    weights = [1.0 / ((i + 1) ** ZIPF_S) for i in range(KEYS)]
    total = sum(weights)
    cdf, acc = [], 0.0
    for weight in weights:
        acc += weight
        cdf.append(acc / total)
    return cdf


def _fleet(clients, cached, seed=24):
    """A 3-member replicated group plus *clients* caching client nodes."""
    world = World(seed=seed)
    members = ("m1", "m2", "m3")
    names = [f"c{i}" for i in range(clients)]
    for name in members + tuple(names):
        world.node("bench", name)
    capsules = [world.capsule(n, "srv") for n in members]
    domain = world.domain("bench")
    group, gref = domain.groups.create(
        KvStore, capsules,
        ReplicationSpec(replicas=3, policy="active", reply_quorum=2),
        group_id=GROUP_ID)
    if cached:
        domain.leases.register(GROUP_ID, ttl_ms=TTL_MS)
    proxies = []
    for name in names:
        app = world.capsule(name, "app")
        domain.leases.attach_client(app.nucleus)
        proxy = world.binder_for(app).bind(gref)
        layer = next(la for la in proxy._channel.layers
                     if getattr(la, "name", "") == "replication")
        layer.follower_reads = True  # both regimes spread their misses
        proxies.append(proxy)
    return world, domain, capsules, proxies


def _zipf_keys(world, count, label="bench:zipf"):
    rng = world.fork_rng(label)
    cdf = _zipf_cdf()
    return [f"k{bisect.bisect_left(cdf, rng.uniform(0.0, 1.0))}"
            for _ in range(count)]


def _member_load(capsules):
    return {
        capsule.nucleus.node_address: sum(
            interface.invocations_served
            for interface in capsule.interfaces.values())
        for capsule in capsules}


def _run(clients, cached):
    world, domain, capsules, proxies = _fleet(clients, cached)
    # Every client follows its own Zipfian stream (the same hot set,
    # not the same sequence); the writer picks keys uniformly.
    streams = [_zipf_keys(world, READS_PER_CLIENT, f"bench:zipf:{i}")
               for i in range(clients)]
    wrng = world.fork_rng("bench:writes")
    proxies[0].put("seed-key", "v")  # group warm-up, outside the window

    base_load = _member_load(capsules)
    base_hits = {i: c.hits for i, c in
                 enumerate(domain.leases.clients.values())}
    start = world.now
    reads = writes = 0
    for step in range(READS_PER_CLIENT):
        for proxy, stream in zip(proxies, streams):
            proxy.get(stream[step])
            reads += 1
            if reads % WRITE_EVERY == 0:
                proxies[0].put(f"k{wrng.randint(0, KEYS - 1)}",
                               f"v{reads}")
                writes += 1
    world.settle()
    op_ms = (world.now - start) / reads

    served = {node: load - base_load[node]
              for node, load in _member_load(capsules).items()}
    for i, client in enumerate(domain.leases.clients.values()):
        hits = client.hits - base_hits.get(i, 0)
        if hits:
            served[client.holder] = hits
    busiest = max(served.values())
    speedup = reads / busiest
    rate_per_s = speedup * (1000.0 / op_ms)
    cache = domain.leases.clients
    return {"clients": clients, "cached": cached, "reads": reads,
            "writes": writes, "op_ms": op_ms, "busiest": busiest,
            "speedup": speedup, "rate_per_s": rate_per_s,
            "hits": sum(c.hits for c in cache.values()),
            "posts": domain.leases.invalidations_posted}


def _storm():
    """Worst case: a write burst against a fully-replicated hot key."""
    world, domain, capsules, proxies = _fleet(16, cached=True)
    hot, burst = "hot", 20
    proxies[0].put(hot, "v0")
    for proxy in proxies:   # populate every cache
        proxy.get(hot)
    world.settle()
    authority = domain.leases
    clients = list(authority.clients.values())
    posts0 = authority.invalidations_posted
    misses0 = sum(c.misses for c in clients)

    start = world.now
    for i in range(burst):
        proxies[0].put(hot, f"v{i + 1}")
    world.settle()
    fanout = authority.invalidations_posted - posts0

    # Reconvergence: read rounds until every cache hits again.  The
    # first refill is skipped (the pending record for the burst is
    # still undrained at that contact), so it takes two rounds.
    rounds = 0
    while rounds < 5:
        rounds += 1
        values = {proxy.get(hot) for proxy in proxies}
        assert values == {f"v{burst}"}  # never a stale or torn read
        if all(c.entries for c in clients):
            break
    reconverge_ms = world.now - start
    refetches = sum(c.misses for c in clients) - misses0
    return {"holders": len(clients), "burst": burst, "fanout": fanout,
            "refetches": refetches, "rounds": rounds,
            "reconverge_ms": reconverge_ms,
            "skipped_fills": sum(c.skipped_fills for c in clients)}


@pytest.mark.parametrize("cached", [False, True],
                         ids=["uncached", "cached"])
def test_c24_read_micro(benchmark, cached):
    """Wall-clock cost of one read: remote interrogation vs cache hit."""
    benchmark.group = "C24 hot read"
    world, domain, capsules, proxies = _fleet(1, cached)
    proxies[0].put("hot", "v")
    proxies[0].get("hot")  # warm the cache (when there is one)
    benchmark(proxies[0].get, "hot")


def _report():
    lines = ["",
             f"Read scaling, Zipfian keys (s={ZIPF_S}, {KEYS} keys), "
             f"{READS_PER_CLIENT} reads/client, 1 write per "
             f"{WRITE_EVERY} reads, 3-way replicated group",
             f"{'clients':>8} {'mode':>9} {'reads':>6} {'writes':>7} "
             f"{'op_ms':>7} {'busiest':>8} {'speedup':>8} "
             f"{'derived_reads_s':>16}"]
    series = [_run(clients, cached)
              for clients in CLIENTS for cached in (False, True)]
    for row in series:
        mode = "cached" if row["cached"] else "uncached"
        lines.append(
            f"{row['clients']:>8} {mode:>9} {row['reads']:>6} "
            f"{row['writes']:>7} {row['op_ms']:>7.3f} "
            f"{row['busiest']:>8} {row['speedup']:>8.2f} "
            f"{row['rate_per_s']:>16.0f}")

    by = {(row["clients"], row["cached"]): row for row in series}
    gain_16 = by[(16, True)]["rate_per_s"] / by[(16, False)]["rate_per_s"]
    spread_16 = by[(16, True)]["speedup"] / by[(16, False)]["speedup"]
    lines += ["",
              f"aggregate gain at 16 clients: {gain_16:.1f}x "
              f"(load-spread alone: {spread_16:.2f}x)",
              "uncached speedup is capped by the three replicas; "
              "cached speedup follows the client count"]
    # The promotion claim: at 16 caching clients the derived aggregate
    # read throughput at least triples the uncached regime's.
    assert gain_16 >= 3.0, gain_16
    # Load-spread alone doubles (misses and the 1-in-50 writes still
    # land on the members); the rest of the gain is hits being cheap.
    assert spread_16 >= 2.0, spread_16
    # Caching must not *reduce* scaling at any size.
    for clients in CLIENTS:
        assert (by[(clients, True)]["rate_per_s"]
                >= by[(clients, False)]["rate_per_s"]), clients
    # The fixed write rate really ran, and invalidations really fanned.
    assert by[(16, True)]["writes"] == by[(16, False)]["writes"] > 0
    assert by[(16, True)]["posts"] > 0

    storm = _storm()
    assert storm["fanout"] == storm["burst"] * storm["holders"]
    assert storm["refetches"] >= storm["holders"]
    assert storm["rounds"] <= 2
    lines += ["",
              f"Invalidation storm ({storm['holders']} holders of one "
              f"hot key, burst of {storm['burst']} writes)",
              f"  invalidation posts    {storm['fanout']}  "
              f"(= writes x holders: the O(W x H) fan-out cost)",
              f"  refetch misses        {storm['refetches']}",
              f"  skipped fills         {storm['skipped_fills']}  "
              f"(first refill races the pending record)",
              f"  reconvergence         {storm['rounds']} read rounds, "
              f"{storm['reconverge_ms']:.1f} virtual ms",
              f"  stale reads served    0  (every read saw the final "
              f"value)"]
    write_report("C24", "read scaling: leases, client caching and "
                        "follower reads", lines)


def test_c24_report(benchmark):
    as_report(benchmark, _report)
