"""C20 — Invocation throughput: batching, codec plans, admission.

Claim (section 2): ODP exists because organisations federate at scale —
"very large numbers" of interacting objects.  A synchronous RPC per
interaction caps one client's throughput at the network round trip, so
an engineering answer to the paper's scale argument needs the classic
trio every production stack ships: adaptive batching (many invocations,
one message), memoised codec plans (marshal the envelope skeleton
once), and admission control (shed overload early and retryably instead
of queueing without bound).

Method, part 1 (throughput): N concurrent clients issue non-idempotent
increments against one server.  Three modes over the same seeded
workload: ``unbatched`` (one proxy call per invocation), ``batched``
(BatchClient coalescing N concurrent calls per round, codec plans off),
``batched+cached`` (plans on).  Series: invocations per virtual second
and p50/p99 per-invocation latency.  Batching trades a little latency
(a member waits for its batch-mates' demux) for multiplied throughput;
the ≥3x gain at 8 clients is asserted, not eyeballed.

Method, part 2 (saturation): an open-loop arrival process offers 2x the
server's admission rate directly to the admission controller — open
loop because concurrent clients' queue waits overlap in real time, so
they must NOT feed back into the arrival clock (a closed loop would
self-throttle and hide the divergence).  With a bounded queue the
controller sheds the excess and the admitted p99 wait stays under the
queue-bound ceiling; unbounded, the queue and waits grow linearly,
without bound, for as long as the overload lasts.
"""

import pytest

from repro import QoS
from repro.errors import ServerBusyError
from repro.perf import AdmissionController, BatchClient, BatchPolicy
from repro.sim.clock import VirtualClock

from benchmarks.workloads import (
    Counter,
    as_report,
    two_node_world,
    write_report,
)

CLIENT_COUNTS = (1, 4, 8)
OPS_PER_CLIENT = 50
MODES = ("unbatched", "batched", "batched+cached")

#: Saturation model: offered load is 2x the admission rate.
RATE_PER_S = 1000.0
BURST = 8
QUEUE_BOUND = 8
ARRIVALS = 400
ARRIVAL_INTERVAL_MS = 0.5  # 2000/s offered against 1000/s admitted


def _pct(values, q):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q / 100.0 * len(ordered)))]


def _run_throughput(clients_n, mode):
    world, servers, clients = two_node_world(seed=20)
    counter = Counter()
    ref = servers.export(counter)
    latencies = []
    start = world.now
    plan_hits = 0
    if mode == "unbatched":
        proxy = world.binder_for(clients).bind(ref)
        for _ in range(OPS_PER_CLIENT):
            for _ in range(clients_n):
                t0 = world.now
                proxy.increment()
                latencies.append(world.now - t0)
    else:
        batcher = BatchClient(
            clients, BatchPolicy(max_batch=clients_n, linger_ms=0.5))
        batcher.plan_cache.enabled = (mode == "batched+cached")
        for _ in range(OPS_PER_CLIENT):
            t0 = world.now
            # N clients' concurrent calls coalesce; the Nth hits
            # max_batch and flushes the round synchronously.
            futures = [batcher.call(ref, "increment")
                       for _ in range(clients_n)]
            done = world.now
            for future in futures:
                future.result()
            latencies.extend([done - t0] * clients_n)
        plan_hits = batcher.plan_cache.hits
        if mode == "batched+cached":
            assert plan_hits > 0  # the memo really served the flushes
    total = clients_n * OPS_PER_CLIENT
    assert counter.value == total  # every mode executed exactly once
    elapsed_s = (world.now - start) / 1000.0
    return {
        "inv_s": total / elapsed_s,
        "p50": _pct(latencies, 50),
        "p99": _pct(latencies, 99),
        "plan_hits": plan_hits,
    }


def _run_saturation(bounded):
    clock = VirtualClock()
    admission = AdmissionController(
        clock, rate_per_s=RATE_PER_S, burst=BURST,
        max_queue=QUEUE_BOUND if bounded else None)
    waits = []
    depth_series = []
    for k in range(ARRIVALS):
        clock.advance(ARRIVAL_INTERVAL_MS)
        try:
            waits.append(admission.admit())
        except ServerBusyError:
            pass
        if (k + 1) % 100 == 0:
            depth_series.append((k + 1, round(admission.depth, 1)))
    return {
        "admitted": admission.admitted,
        "shed": admission.shed,
        "p50_wait": _pct(waits, 50),
        "p99_wait": _pct(waits, 99),
        "max_wait": max(waits),
        "max_depth": admission.max_depth,
        "depth_series": depth_series,
    }


def _run_overload_shedding():
    """End-to-end: a burst beyond the bounded queue sheds retryably
    through the real batch path, and nothing shed ever executed."""
    world, servers, clients = two_node_world(seed=20)
    counter = Counter()
    ref = servers.export(counter)
    world.nucleus("server-node").admission = AdmissionController(
        world.clock, rate_per_s=RATE_PER_S, burst=BURST,
        max_queue=QUEUE_BOUND)
    batcher = BatchClient(clients, BatchPolicy(max_batch=32),
                          qos=QoS(retries=0))
    futures = [batcher.call(ref, "increment") for _ in range(32)]
    batcher.flush()
    executed = shed = 0
    for future in futures:
        try:
            future.result()
            executed += 1
        except ServerBusyError:
            shed += 1
    assert executed == counter.value  # shed members never ran
    assert shed > 0
    return {"offered": 32, "executed": executed, "shed": shed}


@pytest.mark.parametrize("mode", MODES)
def test_c20_throughput_8_clients(benchmark, mode):
    benchmark.group = "C20 throughput, 8 concurrent clients"
    benchmark(lambda: _run_throughput(8, mode))


def test_c20_batching_gain_at_8_clients():
    """The headline acceptance bar: ≥3x invocations/sec."""
    unbatched = _run_throughput(8, "unbatched")
    cached = _run_throughput(8, "batched+cached")
    assert cached["inv_s"] >= 3.0 * unbatched["inv_s"]


def test_c20_report(benchmark):
    as_report(benchmark, _report)


def _report():
    rows = [f"workload: {OPS_PER_CLIENT} rounds of N concurrent "
            f"increments, one server (seed 20); virtual-time series",
            "",
            f"{'clients':>7} {'mode':>15} {'inv/s':>9} "
            f"{'p50 ms':>8} {'p99 ms':>8}"]
    measured = {}
    for clients_n in CLIENT_COUNTS:
        for mode in MODES:
            row = _run_throughput(clients_n, mode)
            measured[(clients_n, mode)] = row
            rows.append(f"{clients_n:>7} {mode:>15} {row['inv_s']:>9.0f} "
                        f"{row['p50']:>8.2f} {row['p99']:>8.2f}")
    gain = (measured[(8, "batched+cached")]["inv_s"]
            / measured[(8, "unbatched")]["inv_s"])
    # The acceptance bar: batching must multiply throughput, not shave
    # percents off it.
    assert gain >= 3.0
    rows.append("")
    rows.append(f"batched+cached vs unbatched at 8 clients: {gain:.2f}x "
                f"invocations/sec "
                f"({measured[(8, 'batched+cached')]['plan_hits']} codec "
                f"plan hits)")

    rows.append("")
    rows.append(f"saturation: {1000.0 / ARRIVAL_INTERVAL_MS:.0f}/s "
                f"offered against {RATE_PER_S:.0f}/s admitted "
                f"(2x, open loop, {ARRIVALS} arrivals)")
    rows.append(f"{'queue':>9} {'admitted':>9} {'shed':>6} "
                f"{'p99 wait':>9} {'max wait':>9} {'max depth':>10}")
    bounded = _run_saturation(bounded=True)
    unbounded = _run_saturation(bounded=False)
    for name, row in (("bounded", bounded), ("unbounded", unbounded)):
        rows.append(f"{name:>9} {row['admitted']:>9} {row['shed']:>6} "
                    f"{row['p99_wait']:>9.1f} {row['max_wait']:>9.1f} "
                    f"{row['max_depth']:>10.1f}")
    # Shedding keeps the admitted tail under the queue-bound ceiling...
    ceiling_ms = (QUEUE_BOUND + 1) / RATE_PER_S * 1000.0
    assert bounded["shed"] > 0
    assert bounded["p99_wait"] <= ceiling_ms
    assert bounded["max_depth"] <= QUEUE_BOUND + 1
    # ...while the unbounded queue admits everything and diverges:
    # depth grows monotonically for as long as the overload lasts.
    assert unbounded["shed"] == 0
    depths = [depth for _, depth in unbounded["depth_series"]]
    assert depths == sorted(depths) and depths[-1] > depths[0] * 2
    assert unbounded["max_wait"] > 10 * bounded["max_wait"]
    rows.append(f"unbounded depth over time: "
                + ", ".join(f"{n}:{d}" for n, d
                            in unbounded["depth_series"]))

    e2e = _run_overload_shedding()
    rows.append("")
    rows.append(f"end-to-end burst of {e2e['offered']} through the "
                f"batch path against the bounded queue: "
                f"{e2e['executed']} executed, {e2e['shed']} shed "
                f"retryably, zero shed executions")
    write_report("C20", "invocation throughput: adaptive batching, "
                        "codec plan caching, admission control "
                        "(section 2's scale argument)", rows)
