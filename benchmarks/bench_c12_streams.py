"""C12 — Streams: explicit binding, QoS, synchronisation (section 7.2).

Claims: streams are typed, traded interfaces with QoS contracts; binding
"produces an interface containing control and management functions";
flows need "synchronization between streams of voice, video and data".

Series produced:
  * delivered frame rate and QoS verdict vs network jitter level,
  * loss sweep: contract violation detection vs injected drop rate,
  * lip-sync skew (audio 50 Hz vs video 25 Hz) vs jitter.
Expected shape: monitors detect exactly the degradations injected; sync
skew stays within tolerance until jitter exceeds it.
"""

import pytest

from repro.net.latency import FixedLatency, UniformLatency
from repro.runtime import World
from repro.streams import FlowSpec, StreamQoS, SyncController

from benchmarks.workloads import as_report, write_report

DURATION_MS = 2000.0


def _conference(latency, drop=0.0, seed=6):
    world = World(seed=seed, latency=latency, drop_probability=drop)
    world.node("conf", "studio")
    world.node("conf", "viewer")
    camera = world.streams.create_endpoint("studio", "camera", [
        FlowSpec("video", "out", "video",
                 StreamQoS(rate_hz=25.0, max_latency_ms=30.0,
                           max_jitter_ms=10.0, max_loss=0.02)),
        FlowSpec("audio", "out", "audio",
                 StreamQoS(rate_hz=50.0, max_latency_ms=30.0,
                           max_jitter_ms=10.0, max_loss=0.02)),
    ])
    player = world.streams.create_endpoint("viewer", "player", [
        FlowSpec("video", "in", "video",
                 StreamQoS(rate_hz=25.0, max_jitter_ms=10.0,
                           max_loss=0.02)),
        FlowSpec("audio", "in", "audio",
                 StreamQoS(rate_hz=50.0, max_jitter_ms=10.0,
                           max_loss=0.02)),
    ])
    camera.attach_source("video", lambda seq: b"V" * 500)
    camera.attach_source("audio", lambda seq: b"A" * 80)
    sync = SyncController("audio", "video", world.clock,
                          tolerance_ms=25.0)
    player.attach_sink("video", sync.sink_for("video"))
    player.attach_sink("audio", sync.sink_for("audio"))
    binding = world.streams.bind(camera, player)
    return world, binding, sync


def _play(world, binding, duration=DURATION_MS):
    binding.start()
    world.scheduler.run_until(world.now + duration)
    binding.stop()
    world.settle()


@pytest.mark.parametrize("jitter", [0.0, 20.0, 60.0])
def test_c12_jitter_levels(benchmark, jitter):
    benchmark.group = "C12 stream under jitter"
    latency = (FixedLatency(2.0) if jitter == 0.0
               else UniformLatency(1.0, jitter))
    benchmark(lambda: _play(*_conference(latency)[:2], 500.0))


def test_c12_report(benchmark):
    as_report(benchmark, _report)


def _report():
    rows = ["-- QoS verdict vs network jitter --"]
    for label, latency in (
            ("fixed 2ms", FixedLatency(2.0)),
            ("jitter 1-15ms", UniformLatency(1.0, 15.0)),
            ("jitter 1-60ms", UniformLatency(1.0, 60.0))):
        world, binding, sync = _conference(latency)
        _play(world, binding)
        stats = binding.monitor_for("video").stats()
        verdict = ("meets contract" if not stats.contract_violations
                   else "; ".join(stats.contract_violations))
        rows.append(f"  {label:>13}: rate "
                    f"{stats.frames_received / (DURATION_MS / 1000):5.1f}"
                    f" fps, jitter {stats.mean_jitter_ms:6.2f} ms -> "
                    f"{verdict}")
    # Detection shape: clean network passes, heavy jitter is flagged.
    world, binding, sync = _conference(FixedLatency(2.0))
    _play(world, binding)
    assert not binding.monitor_for("video").stats().contract_violations
    world, binding, sync = _conference(UniformLatency(1.0, 60.0))
    _play(world, binding)
    assert binding.monitor_for("video").stats().contract_violations

    rows.append("-- loss detection vs injected drop rate --")
    for drop in (0.0, 0.05, 0.2):
        world, binding, sync = _conference(FixedLatency(2.0), drop=drop)
        _play(world, binding)
        stats = binding.monitor_for("audio").stats()
        flagged = any("loss" in v for v in stats.contract_violations)
        rows.append(f"  drop={drop:4.2f}: measured loss "
                    f"{stats.loss_rate:5.3f}, flagged={flagged}")
        if drop == 0.0:
            assert not flagged
        if drop >= 0.05:
            assert flagged

    rows.append("-- lip-sync skew vs jitter --")
    for label, latency in (("fixed 2ms", FixedLatency(2.0)),
                           ("jitter 1-15ms", UniformLatency(1.0, 15.0)),
                           ("jitter 1-60ms", UniformLatency(1.0, 60.0))):
        world, binding, sync = _conference(latency)
        _play(world, binding)
        rows.append(f"  {label:>13}: {len(sync.released)} pairs, mean "
                    f"skew {sync.mean_skew_ms():6.2f} ms, discarded "
                    f"{sync.discarded}")
        for pair in sync.released:
            assert pair.skew_ms <= 25.0  # tolerance always respected
    write_report("C12", "streams: QoS monitoring and inter-stream "
                        "sync (section 7.2)", rows)
