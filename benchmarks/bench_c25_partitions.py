"""C25 — Partition tolerance: quorum writes and merge-on-heal.

Claim (sections 4-5): a network partition is the failure mode that
separates "replicated" from "partition-tolerant".  A minority-side
sequencer must not be able to make a write durable (the quorum
barrier), the supervisor must not mistake the far side of a partition
for a crashed fleet (the vantage panel), and a healed partition must
*merge* — fenced members re-admitted with state transfer — rather than
leave the group permanently degraded.

Method: one seeded scenario, run twice.  Three server nodes host a
3-replica KvStore group (s1-s3, quorum 2, sequencer on s1).  A
scripted :class:`FaultSchedule` then opens three flapping partitions,
each stranding the sequencer with one writer client on the minority
side ({a0, s1} | {cli, s2, s3}).  Two clients probe every 25ms of
virtual time: ``cli`` writes from the majority side (the availability
series) and ``a0`` writes from the minority side (the safety series —
every one of its in-window writes must fail cleanly):

  * baseline — no supervisor, and the member layer's TEST-ONLY
               ``mutate_skip_quorum_barrier`` flag restores the
               pre-fix dirty-write protocol.  The first minority
               write "commits" locally with a 1-of-2 quorum
               certificate, and its uncorroborated suspicions of the
               unreachable majority replicas are accepted unchecked,
               so the group tears itself apart: the majority side
               never recovers even after the network heals.
  * fixed    — the quorum barrier rolls every minority write back,
               a 5-vantage supervisor second-guesses partition-born
               suspicions and diagnoses s1 as partitioned (not
               crashed), and on heal re-admits it with state
               transfer (a partition merge).

Series produced, per mode: failed probes per side, under-quorum
commit-ledger entries, same-seq ledger divergence, and partition
merges.  Expected shape: the fixed platform shows *zero* divergent or
under-quorum ledger entries, at least one partition merge, and
strictly better majority-side availability than the baseline.
"""

import pytest

from repro import ReplicationSpec, World
from repro.comp.invocation import QoS
from repro.errors import OdpError
from repro.heal.supervisor import Supervisor
from repro.net.fault import FaultSchedule, PartitionWindow

from benchmarks.workloads import KvStore, as_report, write_report

PROBE_MS = 25.0
PROBES = 160                 # 4000ms of virtual time
#: Flapping splits: the sequencer's node s1 is stranded with the
#: minority writer a0, away from the replication quorum.
SPLITS = ((400.0, 900.0), (1500.0, 2000.0), (2600.0, 3100.0))
SIDES = (("a0", "s1"), ("cli", "s2", "s3"))
QUORUM = 2


def _ledger_audit(group):
    """Cross-member commit-ledger audit: (dirty entries, divergent seqs).

    Mirrors the ``split_brain`` oracle: an entry whose quorum
    certificate is smaller than ``reply_quorum`` is a dirty commit,
    and one sequence number holding two different write digests on
    different members is divergence.
    """
    dirty = 0
    by_seq = {}
    for member in group.view.members:
        layer = member.layer
        if layer is None:
            continue
        for seq, _view, acks, digest in layer.commit_log:
            if acks is not None and acks < QUORUM:
                dirty += 1
            by_seq.setdefault(seq, set()).add(digest)
    divergent = sum(1 for digests in by_seq.values() if len(digests) > 1)
    return dirty, divergent


def _run(fixed):
    from repro.groups.member import GroupMemberLayer

    world = World(seed=25)
    for name in ("a0", "cli", "s1", "s2", "s3"):
        world.node("org", name)
    domain = world.domain("org")
    servers = {n: world.capsule(n, "srv") for n in ("s1", "s2", "s3")}
    majority_clients = world.capsule("cli", "clients")
    minority_clients = world.capsule("a0", "clients")

    group, gref = domain.groups.create(
        KvStore, [servers[n] for n in ("s1", "s2", "s3")],
        ReplicationSpec(replicas=3, policy="active",
                        reply_quorum=QUORUM),
        group_id="c25.kv")
    qos = QoS(deadline_ms=120.0, retries=2)
    kv_major = world.binder_for(majority_clients).bind(gref, qos=qos)
    kv_minor = world.binder_for(minority_clients).bind(gref, qos=qos)
    kv_major.put("seed", "v0")  # a committed write predates any chaos

    world.apply_chaos(FaultSchedule(
        *[PartitionWindow(SIDES, start, end) for start, end in SPLITS]))
    supervisor = None
    if fixed:
        supervisor = Supervisor(domain, vantage=5)
        domain._supervisor = supervisor
        supervisor.start()
    else:
        GroupMemberLayer.mutate_skip_quorum_barrier = True

    major_failed, minor_failed = [], []
    try:
        for tick in range(PROBES):
            world.scheduler.run_until(world.now + PROBE_MS)
            world.faults.pump()
            # The minority writer probes first: in the baseline its
            # dirty commit and accepted suspicions land *before* the
            # majority side's failover can vote the sequencer out.
            try:
                kv_minor.put("minority", str(tick))
                minor_failed.append(False)
            except OdpError:
                minor_failed.append(True)
            try:
                kv_major.put("probe", str(tick))
                major_failed.append(False)
            except OdpError:
                major_failed.append(True)
    finally:
        GroupMemberLayer.mutate_skip_quorum_barrier = False

    heal = supervisor.report() if fixed else None
    if fixed:
        supervisor.stop()
    dirty, divergent = _ledger_audit(group)
    return {
        "major_failed": sum(major_failed),
        "minor_failed": sum(minor_failed),
        "dirty_commits": dirty,
        "divergent_seqs": divergent,
        "merges": heal["partition_merges"] if fixed else 0,
        "final_live": len(group.view.live_members()),
        "partitions": domain.groups.partition_stats(),
        "heal": heal,
    }


@pytest.mark.parametrize("fixed", [False, True],
                         ids=["baseline", "fixed"])
def test_c25_partition_workload(benchmark, fixed):
    benchmark.group = "C25 flapping partitions"
    benchmark(lambda: _run(fixed))


def test_c25_report(benchmark):
    as_report(benchmark, _report)


def _report():
    baseline = _run(fixed=False)
    fixed = _run(fixed=True)
    rows = [f"workload: {PROBES} probes every {PROBE_MS:.0f}ms from each "
            f"side of a flapping partition (seed 25)",
            "splits: " + "; ".join(
                f"{int(s)}-{int(e)}ms" for s, e in SPLITS) +
            f"  [{' '.join(SIDES[0])}] | [{' '.join(SIDES[1])}]",
            f"{'mode':>9} {'majority':>9} {'minority':>9} {'dirty':>6} "
            f"{'divergent':>10} {'merges':>7}"]
    for name, row in (("baseline", baseline), ("fixed", fixed)):
        rows.append(
            f"{name:>9} {row['major_failed']:>9} {row['minor_failed']:>9} "
            f"{row['dirty_commits']:>6} {row['divergent_seqs']:>10} "
            f"{row['merges']:>7}")

    # Safety: the fixed platform never certifies an under-quorum write
    # and no two members ever hold different writes at one seq — while
    # the baseline's ledger visibly carries the pre-fix dirty commits.
    assert fixed["dirty_commits"] == 0
    assert fixed["divergent_seqs"] == 0
    assert baseline["dirty_commits"] >= 1
    # Liveness: the quorum barrier really fired and rolled back (the
    # safety above is not vacuous), the vantage panel really refused
    # partition-born suspicions, and the heal really merged.
    assert fixed["partitions"]["quorum_failures"] >= 1
    assert fixed["partitions"]["rolled_back_writes"] >= 1
    assert fixed["partitions"]["suspicions_refused"] >= 1
    assert fixed["merges"] >= 1
    assert fixed["final_live"] == 3
    # Availability: strictly better on the majority side than the
    # baseline, whose accepted minority suspicions wreck the group for
    # good — and the minority side recovers once the network does.
    assert fixed["major_failed"] < baseline["major_failed"]
    assert fixed["minor_failed"] < baseline["minor_failed"]

    rows.append("")
    heal = fixed["heal"]
    rows.append(
        f"fixed: {fixed['partitions']['quorum_failures']} quorum "
        f"failure(s) rolled back, "
        f"{fixed['partitions']['suspicions_refused']} suspicion(s) "
        f"vetoed, {heal['partition_merges']} partition merge(s), "
        f"reconciliation mttr "
        f"{heal['reconciliation_mttr_ms']['mean']:.0f}ms; majority "
        f"failed probes {baseline['major_failed']} -> "
        f"{fixed['major_failed']}")
    write_report("C25", "partition tolerance: quorum writes, vantage "
                        "supervision and merge-on-heal under flapping "
                        "partitions (sections 4-5)", rows)
