"""C26 — Overload robustness: deadlines, budgets and brownout vs collapse.

Claim (sections 4.1/5.1): transparency "cannot guarantee that things
will always work perfectly" — and the QoS annex's deadline/priority
constraints are the declared remedy.  The failure mode that motivates
them is not a crash but *metastable overload*: a transient compute
stall (GC pause, noisy neighbour) slows a healthy server, a backlog of
requests accumulates, and once the stall heals the system spends its
capacity completing work whose callers stopped waiting long ago.
Throughput looks fine; *useful* throughput — replies delivered within
the caller's patience — stays collapsed long after the fault is gone.

Method: an interactive stream (1 op / 8ms, 250ms of caller patience)
shares one admission-controlled server with a low-priority scan stream
(bursts of 6 ops / 300ms); a 2-second x400 compute stall hits mid-run.
Two platform configurations over the same seeded workload:

* ``baseline`` — the pre-overload platform: no deadline propagation, no
  retry budgets, classless admission.  The application cannot express
  "this reply is only useful for 250ms", so every backlogged request is
  executed in arrival order.
* ``protected`` — the repro.overload stack: end-to-end deadlines
  stamped from each request's arrival instant, enforced per-path retry
  budgets, class-aware admission (interactive=3, scan=0) with brownout.
  The application drops work whose deadline has already passed instead
  of issuing it, and the platform enforces the same deadline at every
  later hop.

Series: on-time goodput — interactive completions that made their
250ms deadline, per 500ms window of virtual time.  Asserted, not
eyeballed: the baseline's on-time goodput stays collapsed for >= 5
virtual seconds after the stall has healed, while the protected stack
is back at >= 90% of its pre-stall rate within 1.5 seconds — and the
deadline gate's execution log proves no invocation started executing
past its propagated deadline.
"""

import math

import pytest

from repro import QoS
from repro.errors import (
    DeadlineExceededError,
    InvocationExpiredError,
    RetryBudgetExhaustedError,
    ServerBusyError,
)
from repro.overload import BrownoutController, ClassAdmissionController
from repro.perf import AdmissionController

from benchmarks.workloads import (
    Counter,
    as_report,
    two_node_world,
    write_report,
)

#: Offered load and capacity: 125/s interactive + 20/s scan against a
#: 150/s admission rate — headroom when healthy, none to spare.
INTERACTIVE_INTERVAL_MS = 8.0
SCAN_INTERVAL_MS = 300.0
SCAN_BURST = 6
RATE_PER_S = 150.0
BURST = 4
QUEUE_BOUND = 8

STALL_START_MS = 2000.0
STALL_END_MS = 4000.0
STALL_FACTOR = 400.0
HORIZON_MS = 20000.0

DEADLINE_MS = 250.0       # interactive caller patience
SCAN_DEADLINE_MS = 1500.0  # scans tolerate lateness, not staleness
APP_REISSUES = 3
WINDOW_MS = 500.0


def _issue(proxy, qos, reissues):
    """The application retry policy — identical in both modes: re-issue
    retryable failures a bounded number of times, drop the rest."""
    for attempt in range(1 + reissues):
        try:
            proxy.increment(_qos=qos)
            return True
        except (ServerBusyError, RetryBudgetExhaustedError):
            if attempt == reissues:
                return False
        except (InvocationExpiredError, DeadlineExceededError):
            # The deadline is dead: nobody is waiting, so re-issuing
            # would be pure amplification.  (Only the protected stack
            # ever surfaces these.)
            return False
    return False


def _run_overload(protected):
    world, servers, clients = two_node_world(seed=26)
    counter = Counter()
    ref = servers.export(counter)
    server = world.nucleus("server-node")
    client_nucleus = world.nucleus("client-node")
    if protected:
        server.admission = ClassAdmissionController(
            world.clock, rate_per_s=RATE_PER_S, burst=BURST,
            max_queue=QUEUE_BOUND,
            brownout=BrownoutController(world.clock,
                                        target_p99_ms=30.0, window=16))
        server.deadline_gate.record_executions = True
        client_nucleus.deadline_propagation = True
        client_nucleus.retry_budgets.enabled = True
    else:
        server.admission = AdmissionController(
            world.clock, rate_per_s=RATE_PER_S, burst=BURST,
            max_queue=QUEUE_BOUND)
    proxy = world.binder_for(clients).bind(ref)

    # (completion time, lateness vs the arrival's deadline) per success.
    interactive = []
    expired_unissued = 0    # protected app skips already-dead arrivals
    dropped = 0
    scans_done = scans_dropped = 0
    stalled = False
    next_interactive = 0.0
    next_scan = 0.0
    scan_backlog = 0
    while next_interactive < HORIZON_MS:
        due = min(next_interactive, next_scan)
        if world.now < due:
            world.clock.advance(due - world.now)
        if not stalled and world.now >= STALL_START_MS:
            world.faults.stall_node("server-node", STALL_FACTOR)
            stalled = True
        if stalled and world.now >= STALL_END_MS:
            world.faults.unstall_node("server-node")
            stalled = False
        if next_scan <= next_interactive:
            arrival, next_scan = next_scan, next_scan + SCAN_INTERVAL_MS
            scan_backlog += SCAN_BURST
            while scan_backlog:
                scan_backlog -= 1
                if protected:
                    remaining = arrival + SCAN_DEADLINE_MS - world.now
                    if remaining <= 0:
                        scans_dropped += 1
                        continue
                    qos = QoS(priority=0, deadline_ms=remaining,
                              retries=3, retry_delay_ms=2.0)
                else:
                    qos = QoS(retries=3, retry_delay_ms=2.0)
                if _issue(proxy, qos, APP_REISSUES):
                    scans_done += 1
                else:
                    scans_dropped += 1
            continue
        arrival = next_interactive
        next_interactive += INTERACTIVE_INTERVAL_MS
        if protected:
            remaining = arrival + DEADLINE_MS - world.now
            if remaining <= 0:
                # Deadline propagation starts at the edge: the app can
                # see the budget is already spent and never issues.
                expired_unissued += 1
                continue
            qos = QoS(priority=3, deadline_ms=remaining, retries=3)
        else:
            qos = QoS(retries=3)
        if _issue(proxy, qos, APP_REISSUES):
            interactive.append(
                (world.now, world.now - (arrival + DEADLINE_MS)))
        else:
            dropped += 1
    if stalled:
        world.faults.unstall_node("server-node")

    # The shed contract, end to end: every success executed exactly
    # once and nothing shed, expired or dropped ever executed.
    assert counter.value == len(interactive) + scans_done

    windows = int(HORIZON_MS / WINDOW_MS)
    goodput = [0] * windows
    for completed_at, lateness in interactive:
        if lateness <= 1e-9:
            index = min(windows - 1, int(completed_at / WINDOW_MS))
            goodput[index] += 1
    pre_stall = [g for i, g in enumerate(goodput)
                 if (i + 1) * WINDOW_MS <= STALL_START_MS]
    pre_rate = sum(pre_stall) / len(pre_stall)

    recovery_ms = math.inf
    for index in range(int(STALL_END_MS / WINDOW_MS), windows):
        if goodput[index] >= 0.9 * pre_rate:
            recovery_ms = index * WINDOW_MS - STALL_END_MS
            break

    late = []
    if protected:
        for entry in server.deadline_gate.execution_log:
            if entry["deadline"] is not None and \
                    entry["executed_at"] > entry["deadline"] + 1e-9:
                late.append(entry)
    return {
        "goodput": goodput,
        "pre_rate": pre_rate,
        "recovery_ms": recovery_ms,
        "completed": len(interactive),
        "on_time": sum(goodput),
        "expired_unissued": expired_unissued,
        "dropped": dropped,
        "scans_done": scans_done,
        "scans_dropped": scans_dropped,
        "executed": counter.value,
        "shed": server.admission.shed,
        "gate": server.deadline_gate.stats(),
        "budgets": client_nucleus.retry_budgets.totals(),
        "late_executions": late,
    }


@pytest.mark.parametrize("mode", ("baseline", "protected"))
def test_c26_overload(benchmark, mode):
    benchmark.group = "C26 overload, 2s compute stall"
    benchmark(lambda: _run_overload(mode == "protected"))


def test_c26_protected_recovers_baseline_collapses():
    """The headline acceptance bar: bounded recovery vs metastability."""
    baseline = _run_overload(protected=False)
    protected = _run_overload(protected=True)
    # The baseline drains its stale backlog in arrival order: on-time
    # goodput stays collapsed >= 5s after the 2-second stall has healed.
    assert baseline["recovery_ms"] >= 5000.0
    # The protected stack sheds the dead backlog and is back at >= 90%
    # of pre-stall on-time goodput within 1.5s of the heal.
    assert protected["recovery_ms"] <= 1500.0
    # And protection is shedding, not magic: dead work was visibly
    # dropped rather than executed late.
    assert protected["expired_unissued"] + protected["dropped"] > 0
    assert protected["late_executions"] == []


def test_c26_report(benchmark):
    as_report(benchmark, _report)


def _report():
    baseline = _run_overload(protected=False)
    protected = _run_overload(protected=True)
    assert baseline["recovery_ms"] >= 5000.0
    assert protected["recovery_ms"] <= 1500.0
    assert protected["late_executions"] == []
    rows = [
        f"workload: interactive 1 op / {INTERACTIVE_INTERVAL_MS:.0f}ms "
        f"({1000.0 / INTERACTIVE_INTERVAL_MS:.0f}/s, "
        f"{DEADLINE_MS:.0f}ms patience) + scan bursts of {SCAN_BURST} / "
        f"{SCAN_INTERVAL_MS:.0f}ms against {RATE_PER_S:.0f}/s admission",
        f"stall: x{STALL_FACTOR:.0f} compute on the server during "
        f"[{STALL_START_MS:.0f}, {STALL_END_MS:.0f})ms; app re-issues "
        f"retryable failures up to {APP_REISSUES}x (both modes)",
        "",
        f"{'window':>10} {'baseline':>9} {'protected':>10}   "
        f"(on-time interactive completions / {WINDOW_MS:.0f}ms)",
    ]
    for index, (b, p) in enumerate(zip(baseline["goodput"],
                                       protected["goodput"])):
        start = index * WINDOW_MS
        marker = ""
        if start == STALL_START_MS:
            marker = "  <- stall begins"
        elif start == STALL_END_MS:
            marker = "  <- stall heals"
        rows.append(f"{start:>8.0f}ms {b:>9} {p:>10}{marker}")
    rows.append("")
    rows.append(
        "baseline:  on-time goodput back at 90% of pre-stall "
        + (f"after {baseline['recovery_ms']:.0f}ms"
           if baseline["recovery_ms"] != math.inf
           else "NEVER within the horizon")
        + f" ({baseline['on_time']}/{baseline['completed']} completions "
        f"on time, server shed {baseline['shed']})")
    rows.append(
        f"protected: on-time goodput back after "
        f"{protected['recovery_ms']:.0f}ms "
        f"({protected['on_time']}/{protected['completed']} on time, "
        f"{protected['expired_unissued']} expired unissued, "
        f"server shed {protected['shed']}, gate expired "
        f"{protected['gate']['expired_on_arrival']}+"
        f"{protected['gate']['expired_post_queue']}, retries denied "
        f"{protected['budgets']['retries_denied']})")
    rows.append(
        "deadline-gate audit: 0 invocations started executing past "
        "their propagated deadline")
    write_report("C26", "overload robustness under a 2s compute stall",
                 rows)
