"""C4 — Replication masks failure; ordering keeps replicas consistent.

Claims (section 5.3): a replica group appears to the client "as if [it]
were a singleton, but with increased reliability or availability"; "all
the members process invocations from clients in the same order"; the
ordering protocol "should be tolerant of failures in members of the
group and of changes of membership".

Series produced:
  * write cost vs. group size n in {1, 3, 5, 7} (ordering is not free),
  * availability under crashes: n=5 group, members crashed one at a
    time mid-workload; operations completed vs. members lost,
  * read scaling with the read_spread policy.
Expected shape: write cost grows with n; the group serves 100% of
operations while any member survives; replicas stay byte-identical.
"""

import pytest

from repro import ReplicationSpec

from benchmarks.workloads import as_report, KvStore, n_node_world, write_report

WRITES = 50


def _build(n, policy="active", quorum=1):
    world, capsules, clients = n_node_world(n)
    domain = world.domain("org")
    group, gref = domain.groups.create(
        KvStore, capsules, ReplicationSpec(replicas=n, policy=policy,
                                           reply_quorum=quorum))
    proxy = world.binder_for(clients).bind(gref)
    return world, domain, group, proxy


def _write_burst(proxy, count=WRITES):
    for i in range(count):
        proxy.put(f"k{i % 7}", str(i))


@pytest.mark.parametrize("n", [1, 3, 5, 7])
def test_c4_write_cost_vs_group_size(benchmark, n):
    benchmark.group = "C4 write cost vs replicas"
    world, domain, group, proxy = _build(n)
    benchmark(lambda: _write_burst(proxy))


def test_c4_report(benchmark):
    as_report(benchmark, lambda: _report())


def _report():
    rows = ["-- write cost vs group size --"]
    costs = {}
    for n in (1, 3, 5, 7):
        world, domain, group, proxy = _build(n)
        start = world.now
        _write_burst(proxy)
        costs[n] = (world.now - start) / WRITES
        rows.append(f"  n={n}: {costs[n]:8.4f} virtual ms/write")
    assert costs[7] > costs[1]  # ordering + relay is not free
    assert costs[3] > costs[1]

    rows.append("-- availability under member crashes (n=5) --")
    world, domain, group, proxy = _build(5)
    completed, total = 0, 0
    for wave in range(5):
        for i in range(10):
            total += 1
            try:
                proxy.put(f"w{wave}", str(i))
                completed += 1
            except Exception:
                pass
        live = group.view.live_members()
        if len(live) > 1:
            world.crash_node(live[0].node)  # kill the sequencer
        rows.append(f"  after wave {wave}: {completed}/{total} writes ok, "
                    f"{len(group.view.live_members())} live, "
                    f"view {group.view.number}")
    assert completed == total  # availability maintained to the last member

    rows.append("-- replica consistency --")
    world, domain, group, proxy = _build(3)
    for i in range(30):
        proxy.put("shared", str(i))
    states = []
    for member in group.view.members:
        capsule, interface = domain.groups._plumbing[
            (group.group_id, member.index)]
        states.append(dict(interface.implementation.data))
    rows.append(f"  3 replicas identical after 30 conflicting writes: "
                f"{states[0] == states[1] == states[2]}")
    assert states[0] == states[1] == states[2]

    rows.append("-- read scaling (read_spread) --")
    for n in (1, 3, 5):
        world, domain, group, proxy = _build(n, policy="read_spread")
        proxy.put("k", "v")
        start = world.now
        for _ in range(60):
            proxy.get("k")
        rows.append(f"  n={n}: {(world.now - start) / 60:8.4f} virtual "
                    f"ms/read, spread over {n} member(s)")
    write_report("C4", "replication: availability, ordering, cost "
                       "(section 5.3)", rows)
