"""C13 — Ablation: structural vs name-based type checking (§5.1).

The paper's design choice: "type checking [must] be based on interface
signature checking ... (The alternative is to name types and declare
type name hierarchies; however this fails to meet the requirements for
federation and evolution.)"

This ablation implements the rejected alternative — a nominal checker
over declared name hierarchies — and runs both checkers over an
evolution/federation scenario:

  v1      the original service,
  v2      adds an operation (compatible evolution),
  v3      widens a parameter int -> float (compatible evolution),
  foreign an independent organisation's reimplementation under its own
          type name (federation),
  broken  drops an operation (incompatible — must be rejected).

Expected shape: structural accepts v2, v3 and foreign and rejects
broken; nominal accepts only what shares a registered name lineage, so
it rejects the foreign implementation (and the evolutions, until every
organisation's registry is updated in lockstep — the coordination the
paper says cannot be assumed).
"""

from typing import Dict, Set, Tuple

from repro import OdpObject, operation, signature_of
from repro.types.conformance import signature_conforms

from benchmarks.workloads import as_report, write_report


# --- the rejected alternative: a nominal checker -----------------------------

class NominalChecker:
    """Type-name equality plus declared subtype edges."""

    def __init__(self) -> None:
        self._edges: Dict[str, Set[str]] = {}

    def declare_subtype(self, sub: str, sup: str) -> None:
        self._edges.setdefault(sub, set()).add(sup)

    def conforms(self, provided_name: str, required_name: str) -> bool:
        if provided_name == required_name:
            return True
        seen = set()
        frontier = [provided_name]
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            for sup in self._edges.get(name, ()):
                if sup == required_name:
                    return True
                frontier.append(sup)
        return False


# --- the evolution/federation scenario ----------------------------------------

class PrinterV1(OdpObject):
    @operation(params=[str], returns=[int])
    def submit(self, document):
        return 1

    @operation(returns=[int], readonly=True)
    def queue_length(self):
        return 0


class PrinterV2(PrinterV1):
    """Evolution: adds an operation."""

    @operation(params=[int])
    def cancel(self, job_id):
        pass


class PrinterV3(OdpObject):
    """Evolution: widens a parameter type (int job ids -> float)."""

    @operation(params=[str], returns=[int])
    def submit(self, document):
        return 1

    @operation(returns=[int], readonly=True)
    def queue_length(self):
        return 0

    @operation(params=[float])
    def cancel(self, job_id):
        pass


class DruckDienst(OdpObject):
    """A foreign organisation's independent reimplementation."""

    @operation(params=[str], returns=[int])
    def submit(self, document):
        return 1

    @operation(returns=[int], readonly=True)
    def queue_length(self):
        return 0


class BrokenPrinter(OdpObject):
    """Incompatible: drops queue_length."""

    @operation(params=[str], returns=[int])
    def submit(self, document):
        return 1


CASES: Tuple[Tuple[str, type], ...] = (
    ("v2 adds operation", PrinterV2),
    ("v3 widens parameter", PrinterV3),
    ("foreign reimplementation", DruckDienst),
    ("broken (drops operation)", BrokenPrinter),
)


def test_c13_structural_check_speed(benchmark):
    benchmark.group = "C13 check cost"
    required = signature_of(PrinterV1)
    provided = signature_of(PrinterV3)
    benchmark(lambda: signature_conforms(provided, required))


def test_c13_report(benchmark):
    as_report(benchmark, _report)


def _report():
    required = signature_of(PrinterV1)

    # The nominal world: only PrinterV2 was registered as a subtype of
    # PrinterV1 (by the one organisation that owns both names).  V3 and
    # the foreign service have no registered lineage — realistically,
    # since "there is no canonical root" across a federation.
    nominal = NominalChecker()
    nominal.declare_subtype("PrinterV2", "PrinterV1")

    rows = [f"{'case':>26} | structural | nominal"]
    verdicts = {}
    for label, cls in CASES:
        provided = signature_of(cls)
        structural = signature_conforms(provided, required)
        named = nominal.conforms(cls.__name__, "PrinterV1")
        verdicts[label] = (structural, named)
        rows.append(f"{label:>26} | {str(structural):>10} | "
                    f"{str(named)}")

    rows.append("")
    rows.append("structural accepts every behaviour-compatible provider "
                "and rejects the broken one;")
    rows.append("nominal accepts only registered lineage: evolution and "
                "federation both stall on name registries.")

    # The claim's shape.
    assert verdicts["v2 adds operation"] == (True, True)
    assert verdicts["v3 widens parameter"][0] is True
    assert verdicts["v3 widens parameter"][1] is False
    assert verdicts["foreign reimplementation"][0] is True
    assert verdicts["foreign reimplementation"][1] is False
    assert verdicts["broken (drops operation)"] == (False, False)
    write_report("C13", "ablation: structural vs name-based typing "
                        "(section 5.1)", rows)
