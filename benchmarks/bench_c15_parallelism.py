"""C15 — Exploiting parallelism to overcome communication delays (§4.1).

Claim: "the ODP application programmer should also be prepared to
exploit parallelism to overcome communication delays and to make full
use of the multi-processing capability of a distributed system."

Series produced: total virtual time to collect N responses from N
servers, synchronously vs with split-phase futures, N in {1, 4, 16}.
Expected shape: synchronous cost grows linearly with N (round trips
serialise); overlapped cost stays near one round trip plus the server
processing sum — the gap *is* the communication delay parallelism buys
back.
"""

import pytest

from repro.engine.futures import AsyncInvoker
from repro.net.latency import FixedLatency
from repro.runtime import World

from benchmarks.workloads import Counter, as_report, write_report

LATENCY_MS = 20.0


def _build(n):
    world = World(seed=8, latency=FixedLatency(LATENCY_MS))
    world.node("org", "hq")
    refs = []
    for i in range(n):
        world.node("org", f"s{i}")
        refs.append(world.capsule(f"s{i}", "srv").export(Counter()))
    apps = world.capsule("hq", "apps")
    binder = world.binder_for(apps)
    return world, binder, apps, refs


def _sync_fanout(world, binder, refs):
    start = world.now
    for ref in refs:
        binder.bind(ref).increment()
    return world.now - start


def _future_fanout(world, binder, apps, refs):
    invoker = AsyncInvoker(binder, apps)
    start = world.now
    futures = [invoker.call(ref, "increment") for ref in refs]
    world.settle()
    for future in futures:
        future.result()
    return world.now - start


@pytest.mark.parametrize("n", [4, 16])
def test_c15_sync(benchmark, n):
    benchmark.group = "C15 fan-out"
    benchmark.name = f"sync-{n}"

    def round_trip():
        world, binder, apps, refs = _build(n)
        return _sync_fanout(world, binder, refs)

    benchmark(round_trip)


@pytest.mark.parametrize("n", [4, 16])
def test_c15_futures(benchmark, n):
    benchmark.group = "C15 fan-out"
    benchmark.name = f"futures-{n}"
    benchmark(lambda: _future_fanout(*_build(n)))


def test_c15_report(benchmark):
    as_report(benchmark, _report)


def _report():
    rows = [f"network: fixed {LATENCY_MS}ms propagation each way",
            f"{'N':>4} {'sync ms':>10} {'futures ms':>12} {'speedup':>8}"]
    results = {}
    for n in (1, 4, 16):
        world, binder, apps, refs = _build(n)
        sync_ms = _sync_fanout(world, binder, refs)
        world, binder, apps, refs = _build(n)
        future_ms = _future_fanout(world, binder, apps, refs)
        results[n] = (sync_ms, future_ms)
        rows.append(f"{n:>4} {sync_ms:>10.2f} {future_ms:>12.2f} "
                    f"{sync_ms / future_ms:>7.1f}x")
    # Shape: sync grows ~linearly; futures stay near one RTT.
    assert results[16][0] > 10 * results[1][0]
    assert results[16][1] < 3 * results[1][1]
    assert results[16][0] / results[16][1] > 5
    write_report("C15", "parallelism overcomes communication delays "
                        "(section 4.1)", rows)
