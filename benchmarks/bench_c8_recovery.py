"""C8 — Failure transparency: checkpoint + log recovery (section 5.5).

Claim: "the snapshot must be associated with a log of outstanding
interactions, so that when recovery occurs, the replacement object can
mirror exactly the state of its predecessor."

Series produced, sweeping the checkpoint interval c in {1, 5, 20, 100}:
  * steady-state overhead per write (checkpoints + write-ahead logging),
  * recovery work (log entries replayed) and recovery virtual time after
    a crash at a fixed point in the workload,
  * state fidelity: recovered balance == pre-crash balance, always.
Expected shape: the classic trade-off — small c costs more in steady
state but recovers with less replay; fidelity is exact at every c.
"""

import pytest

from repro import EnvironmentConstraints, FailureSpec

from benchmarks.workloads import Account, as_report, n_node_world, write_report

WRITES = 63  # deliberately not a multiple of the checkpoint intervals


def _run(checkpoint_every, crash=True):
    world, capsules, clients = n_node_world(2)
    domain = world.domain("org")
    ref = capsules[0].export(
        Account(0),
        constraints=EnvironmentConstraints(
            failure=FailureSpec(checkpoint_every=checkpoint_every)))
    proxy = world.binder_for(clients).bind(ref)
    start = world.now
    for _ in range(WRITES):
        proxy.deposit(1)
    steady_ms = (world.now - start) / WRITES
    if not crash:
        return steady_ms, None, None, None
    expected = WRITES
    world.crash_node("node-0")
    recover_start = world.now
    domain.recovery.recover(ref.interface_id, capsules[1])
    recovery_ms = world.now - recover_start
    replayed = domain.recovery.replayed_entries
    recovered_balance = proxy.balance_of()
    return steady_ms, recovery_ms, replayed, recovered_balance


@pytest.mark.parametrize("interval", [1, 5, 20, 100])
def test_c8_checkpoint_interval(benchmark, interval):
    benchmark.group = "C8 checkpoint interval"
    benchmark(lambda: _run(interval))


def test_c8_report(benchmark):
    as_report(benchmark, _report)


def _report():
    rows = [f"workload: {WRITES} writes, crash, recover at alternate "
            f"node"]
    rows.append(f"{'c':>5} {'steady ms/write':>17} "
                f"{'recovery ms':>12} {'replayed':>9} {'exact?':>7}")
    series = {}
    for interval in (1, 5, 20, 100):
        steady, recovery, replayed, balance = _run(interval)
        exact = balance == WRITES
        series[interval] = (steady, replayed)
        rows.append(f"{interval:>5} {steady:>17.4f} {recovery:>12.4f} "
                    f"{replayed:>9} {str(exact):>7}")
        assert exact  # "mirror exactly the state of its predecessor"
    # The trade-off shape: frequent checkpoints cost more in steady
    # state; rare checkpoints mean more replay at recovery.
    assert series[1][0] > series[100][0]
    assert series[100][1] > series[1][1]
    write_report("C8", "failure transparency: checkpoint-interval "
                       "trade-off, exact recovery (section 5.5)", rows)
