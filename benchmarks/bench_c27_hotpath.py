"""C27 — Hot path: zero-copy NDR, codec plans, and the event wheel.

Claim (section 6.4/7): an ODP platform's transparency machinery must not
price itself out — marshalling and dispatch overhead is the standing
argument *against* distribution transparency, so the engineering answer
is to drive the per-invocation cost of the infrastructure toward the
cost of the application work it carries.

C27 measures the marshalling hot path rebuilt in this change:

* **Request-marshal pipeline** — the C18-era path built a context dict
  (``Nucleus.encode_context``), assembled the envelope dict, and walked
  the whole structure with the generic recursive encoder
  (``dumps_reference``).  The zero-copy path writes cached plan chunks
  and live ``InvocationContext`` fields straight into one ``bytearray``
  (``InvocationPlan.encode_request``) — no intermediate dicts, no
  chunk-list join, no per-call key sort.  The headline assertion is
  **≥3x** on the PACKED pipeline; the golden/fuzz layer pins the output
  byte-identical to the legacy walk.
* **Codec micro** — raw ``dumps``/``loads`` fast paths vs the retained
  reference walks, on a representative request envelope.
* **End-to-end ``repro.check``** — seeds/hour with the full stack vs a
  reconstructed C18-era marshalling arm (zero-copy off, plan caches
  off) over the *same seeds*, with run digests asserted byte-identical
  between arms: the speedup must come from doing the same observable
  work cheaper, never from doing different work.
* **C20 configuration** — wall-clock invocation rate of the
  batched+cached throughput workload with the zero-copy path on vs
  off.  (The *virtual*-time inv/s series is digest-pinned and identical
  by construction; the lift is real-seconds processing rate.)

The check harness is not codec-bound — engine layering, the network
model and tracing dominate once the codec is fast — so the end-to-end
lift is asserted as a lift, not as the 3x that holds on the marshalling
pipeline itself; the report prints the honest profile split.
"""

import cProfile
import pstats
import time

from repro.check.explorer import CheckConfig, run_seed
from repro.comp.invocation import InvocationContext
from repro.engine.nucleus import Nucleus
from repro.ndr.formats import PackedFormat, TaggedFormat, set_zero_copy
from repro.ndr.plancache import InvocationPlan, PlanCache

from benchmarks.workloads import as_report, write_report
from benchmarks.bench_c20_throughput import _run_throughput

CHECK_SEEDS = 25
C20_ROUNDS = 8

#: Representative hot invocation: a transfer with credentials, a
#: transaction id, a federation hop and overload stamps in ``extra``.
_ARGS = ["acct-001", 250, {"memo": "transfer", "tags": ["a", "b"]}]
_INV_ID = "cli/app#00042"


def _context():
    return InvocationContext(
        principal="cli/app", origin_domain="core",
        transaction_id="tx-17", credentials={"token": "t-abc123"},
        via_domains=("core", "edge"),
        extra={"deadline_at": 120.25, "priority": 3})


def _plan(fmt):
    return InvocationPlan(fmt, "capsule-7", "iface:Accounts@3",
                          "transfer", "invoke", 3, True)


def _legacy_request_bytes(fmt, ctx):
    """The pre-plan marshalling path, step for step: context dict,
    envelope dict, generic recursive walk."""
    ctx_obj = Nucleus.encode_context(ctx)
    return fmt.dumps_reference({
        "capsule": "capsule-7",
        "inv": {"args": _ARGS, "ctx": ctx_obj, "epoch": 3,
                "id": "iface:Accounts@3", "inv_id": _INV_ID,
                "kind": "invoke", "op": "transfer"}})


def _rate_pair_us(fn_a, fn_b, rounds=1500, repeats=6):
    """Best-of-*repeats* per-call cost for two competing paths, with
    the timing windows interleaved A/B/A/B so CPU frequency drift and
    scheduler noise land on both arms alike; the minimum per arm
    estimates intrinsic cost."""
    fn_a()
    fn_b()  # warm both
    best_a = best_b = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(rounds):
            fn_a()
        best_a = min(best_a, time.perf_counter() - t0)
        t0 = time.perf_counter()
        for _ in range(rounds):
            fn_b()
        best_b = min(best_b, time.perf_counter() - t0)
    return (best_a / rounds * 1e6, best_b / rounds * 1e6)


def marshal_micro():
    """Request-pipeline and raw-codec ratios, per wire format."""
    ctx = _context()
    out = {}
    for fmt, name in ((PackedFormat(), "packed"), (TaggedFormat(),
                                                   "tagged")):
        plan = _plan(fmt)
        wire = _legacy_request_bytes(fmt, ctx)
        assert plan.encode_request(_ARGS, ctx, _INV_ID) == wire
        legacy_us, plan_us = _rate_pair_us(
            lambda: _legacy_request_bytes(fmt, ctx),
            lambda: plan.encode_request(_ARGS, ctx, _INV_ID))
        obj = fmt.loads(wire)
        enc_ref, enc_fast = _rate_pair_us(
            lambda: fmt.dumps_reference(obj), lambda: fmt.dumps(obj))
        dec_ref, dec_fast = _rate_pair_us(
            lambda: fmt.loads_reference(wire), lambda: fmt.loads(wire))
        out[name] = {
            "pipeline_legacy_us": legacy_us,
            "pipeline_plan_us": plan_us,
            "pipeline_gain": legacy_us / plan_us,
            "enc_gain": enc_ref / enc_fast,
            "dec_gain": dec_ref / dec_fast,
        }
    return out


def _sweep(seeds):
    config = CheckConfig()
    digests = []
    t0 = time.perf_counter()
    for seed in range(seeds):
        digests.append(run_seed(seed, config).digest)
    return (time.perf_counter() - t0) / seeds * 1000.0, digests


def _with_stack(zero_copy, fn):
    """Run *fn* under a stack arm and restore the flags afterwards."""
    previous = set_zero_copy(zero_copy)
    saved_default = PlanCache.default_enabled
    PlanCache.default_enabled = zero_copy
    try:
        return fn()
    finally:
        set_zero_copy(previous)
        PlanCache.default_enabled = saved_default


def check_ab(seeds=CHECK_SEEDS):
    """End-to-end seeds/hour: full stack vs the C18 marshalling arm."""
    run_seed(0, CheckConfig())  # warm imports/caches outside the timer
    # Best-of-two sweeps per arm: a single stray scheduling hiccup on a
    # shared runner otherwise dominates a 10-seed sample.
    fast_ms, fast_digests = _with_stack(True, lambda: _sweep(seeds))
    fast_ms = min(fast_ms, _with_stack(True, lambda: _sweep(seeds))[0])
    legacy_ms, legacy_digests = _with_stack(False, lambda: _sweep(seeds))
    legacy_ms = min(legacy_ms,
                    _with_stack(False, lambda: _sweep(seeds))[0])
    assert fast_digests == legacy_digests  # same observable runs
    return {
        "seeds": seeds,
        "fast_ms_per_seed": fast_ms,
        "legacy_ms_per_seed": legacy_ms,
        "fast_seeds_hour": 3600_000.0 / fast_ms,
        "legacy_seeds_hour": 3600_000.0 / legacy_ms,
        "gain": legacy_ms / fast_ms,
    }


def c20_lift(rounds=C20_ROUNDS):
    """Wall-clock invocation rate of the C20 batched+cached workload."""
    def wall():
        result = _run_throughput(8, "batched+cached")  # warm
        best = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            result = _run_throughput(8, "batched+cached")
            best = min(best, time.perf_counter() - t0)
        return 8 * 50 / best, result["inv_s"]

    fast_inv_s, fast_virtual = _with_stack(True, wall)
    legacy_inv_s, legacy_virtual = _with_stack(False, wall)
    assert fast_virtual == legacy_virtual  # virtual series is pinned
    return {
        "fast_wall_inv_s": fast_inv_s,
        "legacy_wall_inv_s": legacy_inv_s,
        "lift": fast_inv_s / legacy_inv_s,
        "virtual_inv_s": fast_virtual,
    }


_CODEC_FILES = ("formats.py", "plancache.py", "sigcodec.py")


def profile_split(seeds=8):
    """tottime split of a check sweep: codec files vs everything else."""
    def sweep():
        profile = cProfile.Profile()
        profile.enable()
        for seed in range(seeds):
            run_seed(seed, CheckConfig())
        profile.disable()
        stats = pstats.Stats(profile)
        total = codec = 0.0
        for (filename, _, _), row in stats.stats.items():
            total += row[2]
            if filename.endswith(_CODEC_FILES):
                codec += row[2]
        return {"total_s": total, "codec_s": codec,
                "codec_share": codec / total}

    run_seed(0, CheckConfig())  # warm
    return {"fast": _with_stack(True, sweep),
            "legacy": _with_stack(False, sweep)}


# -- assertions ---------------------------------------------------------------


def test_c27_request_pipeline_gain():
    """The headline bar: ≥3x on the packed request-marshal pipeline."""
    micro = marshal_micro()
    assert micro["packed"]["pipeline_gain"] >= 3.0
    assert micro["tagged"]["pipeline_gain"] >= 2.0


def test_c27_codec_fast_paths_beat_reference():
    """Regression guard: the fast paths must stay ahead of the
    reference walks (which remain the executable spec)."""
    micro = marshal_micro()
    assert micro["packed"]["enc_gain"] >= 1.2
    assert micro["packed"]["dec_gain"] >= 1.2
    assert micro["tagged"]["enc_gain"] >= 1.1
    assert micro["tagged"]["dec_gain"] >= 1.0


def test_c27_check_digests_and_throughput():
    """Both stacks replay identical runs; the fast stack must at least
    never be slower (the honest ~1.15x lift is in the report, measured
    over the full sweep)."""
    ab = check_ab(seeds=10)
    assert ab["gain"] >= 0.95


def test_c27_c20_wall_clock_lift():
    lift = c20_lift(rounds=3)
    assert lift["lift"] >= 1.05


def test_c27_hotpath_seed(benchmark):
    benchmark.group = "C27 hot path"
    config = CheckConfig()
    run_seed(0, config)
    benchmark(lambda: run_seed(3, config))


def test_c27_report(benchmark):
    as_report(benchmark, _report)


def _report():
    micro = marshal_micro()
    ab = check_ab()
    lift = c20_lift()
    split = profile_split()

    rows = ["request-marshal pipeline (context dict + envelope walk vs "
            "zero-copy plan):", ""]
    rows.append(f"{'format':>8} {'legacy us':>10} {'plan us':>9} "
                f"{'gain':>7} {'enc':>6} {'dec':>6}")
    for name in ("packed", "tagged"):
        m = micro[name]
        rows.append(f"{name:>8} {m['pipeline_legacy_us']:>10.1f} "
                    f"{m['pipeline_plan_us']:>9.1f} "
                    f"{m['pipeline_gain']:>6.2f}x "
                    f"{m['enc_gain']:>5.2f}x {m['dec_gain']:>5.2f}x")
    assert micro["packed"]["pipeline_gain"] >= 3.0

    rows.append("")
    rows.append(f"repro.check end-to-end over {ab['seeds']} seeds, "
                f"digests byte-identical between arms:")
    rows.append(f"  C18 marshalling arm {ab['legacy_ms_per_seed']:.2f} "
                f"ms/seed ({ab['legacy_seeds_hour']:,.0f} seeds/hour)")
    rows.append(f"  zero-copy stack     {ab['fast_ms_per_seed']:.2f} "
                f"ms/seed ({ab['fast_seeds_hour']:,.0f} seeds/hour)  "
                f"{ab['gain']:.2f}x")

    rows.append("")
    rows.append(f"C20 batched+cached, wall-clock invocation rate "
                f"(virtual series pinned at "
                f"{lift['virtual_inv_s']:.0f} inv/s):")
    rows.append(f"  legacy {lift['legacy_wall_inv_s']:,.0f} inv/s  ->  "
                f"zero-copy {lift['fast_wall_inv_s']:,.0f} inv/s  "
                f"({lift['lift']:.2f}x)")

    rows.append("")
    rows.append("profile split of a check sweep (tottime):")
    for arm in ("legacy", "fast"):
        part = split[arm]
        rows.append(f"  {arm:>6}: codec {part['codec_s'] * 1000:6.1f} ms "
                    f"of {part['total_s'] * 1000:6.1f} ms "
                    f"({part['codec_share'] * 100:.0f}% of runtime)")
    rows.append("")
    rows.append("the check harness is engine/network-bound once the "
                "codec is fast; the 3x holds on the marshalling "
                "pipeline itself and every digest stays byte-identical")

    write_report("C27", "hot path: zero-copy NDR + event wheel", rows)


if __name__ == "__main__":
    _report()
    with open("benchmarks/out/C27.txt") as handle:
        print(handle.read())
