"""C21 — Sharded object space: aggregate throughput and rebalance MTTR.

Claim (sections 3 and 5.4): distribution lets a service exceed any
single node's capacity — "migration of programs or data to balance
loads" — but only if placement spreads the keyspace and ownership can
move *while the service runs*.  The ``repro.shard`` space makes both
measurable:

  * **Scaling.**  A keyed store partitioned over 256 shards is placed
    on fleets of 4, 16 and 64 nodes; a Zipfian client (s=0.7 over 800
    keys — skewed, as real keyspaces are) drives the same operation
    sequence at each size.  The simulator executes serially, so
    aggregate throughput is *derived* from the measured per-node load:
    the fleet's makespan is bottlenecked by its busiest node, so
    parallel speedup = total ops / max per-node ops (the C14 discipline
    of measuring the scaling *shape*, not laptop wall-clock).  Expected:
    near-linear 4 -> 16 (>= 3x), then the hot-key ceiling appears by 64
    — the largest key's owner bounds the makespan no matter how many
    nodes join, the classic skew limit consistent hashing cannot remove.

  * **Rebalance under load.**  An 8-node fleet serves the same Zipfian
    traffic while membership churns mid-stream: a node joins, the
    busiest node gracefully drains, a node crashes and its shards are
    re-instated from checkpoints.  The space's write-execution ledger
    then proves the safety claim: every acknowledged increment executed
    exactly once, on the owner of record, through every cutover — and
    the per-move degraded windows (detection-inclusive for the crash)
    are the measured rebalance MTTR.
"""

import bisect

import pytest

from repro.comp.invocation import QoS
from repro.errors import OdpError
from repro.runtime import World

from benchmarks.workloads import as_report, write_report
from repro.check.workload import ShardStore

SHARDS = 256
VNODES = 128
ZIPF_S = 0.7
KEYS = 800
OPS = 800
FLEETS = (4, 16, 64)


def _zipf_cdf():
    weights = [1.0 / ((i + 1) ** ZIPF_S) for i in range(KEYS)]
    total = sum(weights)
    cdf, acc = [], 0.0
    for weight in weights:
        acc += weight
        cdf.append(acc / total)
    return cdf


def _fleet(nodes, seed=21, shards=SHARDS):
    world = World(seed=seed)
    names = [f"s{i}" for i in range(nodes)]
    for name in names + ["cli"]:
        world.node("bench", name)
    capsules = [world.capsule(name, "srv") for name in names]
    app = world.capsule("cli", "app")
    space = world.domain("bench").shards.create(
        "grid", ShardStore, capsules, shards=shards, vnodes=VNODES)
    return world, space, space.bind(app)


def _zipf_keys(world, count):
    rng = world.fork_rng("bench:zipf")
    cdf = _zipf_cdf()
    return [f"k{bisect.bisect_left(cdf, rng.uniform(0.0, 1.0))}"
            for _ in range(count)]


@pytest.mark.parametrize("nodes", [4, 16])
def test_c21_routed_increment(benchmark, nodes):
    """Wall-clock cost of one routed increment (ring lookup + stack)."""
    benchmark.group = "C21 routed increment"
    world, space, proxy = _fleet(nodes)
    benchmark(proxy.incr, "hot-key")


def _scaling_series():
    series = []
    for nodes in FLEETS:
        world, space, proxy = _fleet(nodes)
        keys = _zipf_keys(world, OPS)
        start = world.now
        served = {}
        for key in keys:
            owner = space.owner_of(key)
            proxy.incr(key)
            served[owner] = served.get(owner, 0) + 1
        op_ms = (world.now - start) / OPS
        busiest = max(served.values())
        speedup = OPS / busiest
        # Derived aggregate rate: each node replays its share of the
        # measured per-op latency; the busiest node's lane is the
        # fleet's makespan.
        rate_per_s = speedup * (1000.0 / op_ms)
        series.append({"nodes": nodes, "op_ms": op_ms,
                       "busiest": busiest, "loaded": len(served),
                       "speedup": speedup, "rate_per_s": rate_per_s})
    return series


def _churn_run():
    """The same traffic while membership churns; returns the evidence."""
    world, space, proxy = _fleet(8, seed=23)
    space.record_executions = True
    proxy = space.bind(world.capsule("cli", "app2"),
                       qos=QoS(deadline_ms=300.0, retries=4))
    keys = _zipf_keys(world, 600)
    model = {}
    ambiguous = {}
    crash_at = None
    for index, key in enumerate(keys):
        if index == 200:
            world.node("bench", "s8")
            space.rebalancer.node_joined(world.capsule("s8", "srv"))
        if index == 350:
            busiest = max(space.per_node(), key=space.per_node().get)
            space.rebalancer.node_left(busiest)
        if index == 450:
            world.crash_node(space.owners[0])
            crash_at = world.now
        if index == 500:
            dead = space.owners[0]
            space.rebalancer.node_left(dead, dead=True,
                                       down_since=crash_at)
            world.restart_node(dead)
        try:
            proxy.incr(key)
            model[key] = model.get(key, 0) + 1
        except OdpError:
            ambiguous[key] = ambiguous.get(key, 0) + 1
    finals = {key: proxy.get(key) for key in sorted(model)}
    return world, space, model, ambiguous, finals


def _report():
    lines = ["",
             "Aggregate throughput, Zipfian keyspace "
             f"(s={ZIPF_S}, {KEYS} keys, {OPS} ops, {SHARDS} shards)",
             f"{'nodes':>6} {'op_ms':>8} {'busiest':>8} {'loaded':>7} "
             f"{'speedup':>8} {'derived_ops_s':>14}"]
    series = _scaling_series()
    for row in series:
        lines.append(f"{row['nodes']:>6} {row['op_ms']:>8.3f} "
                     f"{row['busiest']:>8} {row['loaded']:>7} "
                     f"{row['speedup']:>8.2f} {row['rate_per_s']:>14.0f}")
    by_nodes = {row["nodes"]: row for row in series}
    gain_4_16 = by_nodes[16]["speedup"] / by_nodes[4]["speedup"]
    gain_16_64 = by_nodes[64]["speedup"] / by_nodes[16]["speedup"]
    lines += ["",
              f"speedup gain 4->16:  {gain_4_16:.2f}x (near-linear)",
              f"speedup gain 16->64: {gain_16_64:.2f}x "
              f"(hot-key ceiling: the largest key's owner bounds the "
              f"makespan)"]
    # The scaling claim: quadrupling the fleet at least triples the
    # derived aggregate throughput under realistic skew.
    assert gain_4_16 >= 3.0, gain_4_16
    assert by_nodes[64]["speedup"] > by_nodes[16]["speedup"]
    # Routing cost must not degrade with fleet size (C14 discipline).
    assert by_nodes[64]["op_ms"] <= 2.0 * by_nodes[4]["op_ms"]

    world, space, model, ambiguous, finals = _churn_run()
    report = space.report()
    acked = sum(model.values())
    # Safety: every acknowledged write executed exactly once, on the
    # owner of record, across join + drain + crash-recovery cutovers.
    for key, final in finals.items():
        low = model[key]
        high = model[key] + ambiguous.get(key, 0)
        assert final is not None and low <= final <= high, \
            (key, low, final, high)
    seen = set()
    for entry in space.execution_log:
        assert entry["inv_id"] not in seen, entry
        seen.add(entry["inv_id"])
        assert entry["node"] == entry["owner"], entry
    assert report["migrations"] >= 1
    assert report["recoveries"] >= 1
    assert report["chases"] + report["stale_hits"] > 0
    assert space.rebalancer.failures == 0
    mttr = report["move_mttr_ms"]
    assert mttr["moves"] == len(space.mttr_ms) and mttr["max"] > 0.0

    lines += ["",
              "Rebalance under load (8 nodes, 600 ops; join @200, "
              "drain @350, crash @450, recover @500)",
              f"  acked increments      {acked}",
              f"  ambiguous (crash era) {sum(ambiguous.values())}",
              f"  lost or duplicated    0  (per-key envelope + "
              f"execution ledger clean)",
              f"  migrations            {report['migrations']}",
              f"  recoveries            {report['recoveries']}",
              f"  transparent chases    {report['chases']} "
              f"(+{report['stale_hits']} stale-epoch passes)",
              f"  fenced rejections     {report['fenced_rejections']}",
              f"  dedup entries moved   {report['reply_entries_moved']}",
              f"  move MTTR ms          mean {mttr['mean']} / "
              f"max {mttr['max']} over {mttr['moves']} moves "
              f"(detection-inclusive for the crash)"]
    write_report("C21", "sharded object space: scaling and "
                        "rebalance-under-load", lines)


def test_c21_report(benchmark):
    as_report(benchmark, _report)
