"""C10 — Generated marshalling (section 5.1).

Claim: "From a description of the signatures of the operations in an
interface, a compiler can automatically generate code to marshal data
from the local representation format to a network format and vice versa."

Series produced:
  * encode+decode wall time and wire size by value shape and depth, for
    both wire formats (packed binary vs tagged text),
  * end-to-end invocation cost vs argument size (the network part of
    access transparency),
  * reference marshalling (identity + paths + full signature) vs a
    primitive of similar wire size.
Expected shape: cost scales with value complexity; tagged is bulkier and
slower than packed; both round-trip losslessly.
"""

import pytest

from repro.comp.reference import AccessPath, InterfaceRef
from repro.comp.model import signature_of
from repro.ndr.codec import Marshaller
from repro.ndr.formats import get_format

from benchmarks.workloads import (
    Counter,
    Echo,
    as_report,
    two_node_world,
    write_report,
)

VALUES = {
    "int": 42,
    "string-100": "x" * 100,
    "string-10k": "x" * 10_000,
    "flat-list-100": list(range(100)),
    "nested-depth-6": None,  # built below
    "record-tree": None,
}


def _build_values():
    nested = 1
    for _ in range(6):
        nested = [nested, nested]
    VALUES["nested-depth-6"] = nested
    VALUES["record-tree"] = {
        f"field{i}": {"id": i, "name": f"item-{i}",
                      "tags": ["a", "b", "c"]}
        for i in range(20)
    }


_build_values()


def _roundtrip(fmt_name, value):
    fmt = get_format(fmt_name)
    marshaller = Marshaller()
    wire = fmt.dumps(marshaller.marshal(value))
    return marshaller.unmarshal(fmt.loads(wire)), len(wire)


@pytest.mark.parametrize("fmt", ["packed", "tagged"])
@pytest.mark.parametrize("shape", ["int", "string-10k", "record-tree"])
def test_c10_roundtrip(benchmark, fmt, shape):
    benchmark.group = f"C10 marshalling ({fmt})"
    value = VALUES[shape]
    benchmark(lambda: _roundtrip(fmt, value))


def test_c10_report(benchmark):
    as_report(benchmark, _report)


def _report():
    import time

    rows = ["-- wire size and wall time by shape and format --"]
    sizes = {}
    for shape, value in VALUES.items():
        line = f"  {shape:>15}:"
        for fmt_name in ("packed", "tagged"):
            begin = time.perf_counter()
            for _ in range(50):
                result, size = _roundtrip(fmt_name, value)
            elapsed = (time.perf_counter() - begin) * 1000 / 50
            sizes[(shape, fmt_name)] = size
            line += f"  {fmt_name} {size:>7}B {elapsed:7.3f}ms"
        rows.append(line)
    # Tagged text is bulkier for string- and record-heavy payloads;
    # interestingly, packed's fixed 8-byte integers lose to tagged's
    # short decimal integers on deep int-only trees — reported above.
    for shape in ("string-100", "string-10k", "record-tree"):
        assert sizes[(shape, "tagged")] > sizes[(shape, "packed")]

    rows.append("-- end-to-end invocation vs argument size --")
    world, servers, clients = two_node_world()
    proxy = world.binder_for(clients).bind(servers.export(Echo()))
    for size in (10, 1000, 100_000):
        payload = "x" * size
        start = world.now
        for _ in range(10):
            proxy.echo(payload)
        rows.append(f"  arg {size:>7}B: "
                    f"{(world.now - start) / 10:8.4f} virtual ms/call")

    rows.append("-- reference vs primitive marshalling --")
    ref = InterfaceRef("if-1", signature_of(Counter),
                       (AccessPath("n", "c"),))
    _, ref_size = _roundtrip("packed", ref)
    _, str_size = _roundtrip("packed", "x" * ref_size)
    rows.append(f"  interface ref wire size: {ref_size}B "
                f"(identity + paths + full signature)")
    rows.append(f"  equal-sized string:      {str_size}B")
    write_report("C10", "generated marshalling: cost scales with "
                        "complexity; formats interchangeable in function "
                        "(section 5.1)", rows)
