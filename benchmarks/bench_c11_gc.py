"""C11 — Distributed garbage collection (section 7.3).

Claims: "only passive objects need be considered - active ones cannot be
garbage by definition"; idle machines "can contribute resources towards
the garbage collection process"; explicit close and archival tiering
bound the cost of abandoned references.

Series produced:
  * sweep cost vs population size (active/passive mix),
  * precision/safety matrix: what a sweep may and may not collect
    (passive+expired yes; active no; passive+leased no; closed yes),
  * reclamation curve: passive population over repeated idle sweeps as
    leases expire.
Expected shape: sweeps are linear in population; safety invariants hold
exactly; the reclamation curve drops to zero.
"""

import pytest

from repro import EnvironmentConstraints

from benchmarks.workloads import Account, as_report, n_node_world, write_report

RESOURCE = EnvironmentConstraints(resource=True)


def _population(total, passive_fraction=0.5, leased=False):
    world, capsules, clients = n_node_world(2)
    domain = world.domain("org")
    binder = world.binder_for(clients)
    passive_ids = []
    for i in range(total):
        capsule = capsules[i % 2]
        ref = capsule.export(Account(i), constraints=RESOURCE)
        if leased:
            binder.bind(ref)
        if i < total * passive_fraction:
            domain.passivation.passivate(capsule, ref.interface_id)
            passive_ids.append(ref.interface_id)
    return world, domain, passive_ids


@pytest.mark.parametrize("total", [20, 100, 400])
def test_c11_sweep_cost(benchmark, total):
    benchmark.group = "C11 sweep cost"
    world, domain, passive = _population(total)
    world.clock.advance(60_000.0)
    benchmark(domain.collector.sweep)


def test_c11_report(benchmark):
    as_report(benchmark, _report)


def _report():
    import time

    rows = ["-- sweep wall time vs population --"]
    for total in (20, 100, 400):
        world, domain, passive = _population(total)
        world.clock.advance(60_000.0)
        begin = time.perf_counter()
        report = domain.collector.sweep()
        elapsed = (time.perf_counter() - begin) * 1000
        rows.append(f"  population {total:>4}: {elapsed:7.3f} wall ms, "
                    f"examined {report.examined}, "
                    f"collected {len(report.collected)}")
        assert len(report.collected) == len(passive)

    rows.append("-- safety/precision matrix --")
    world, capsules, clients = n_node_world(2)
    domain = world.domain("org")
    binder = world.binder_for(clients)

    active_ref = capsules[0].export(Account(1), constraints=RESOURCE)
    passive_expired = capsules[0].export(Account(2), constraints=RESOURCE)
    passive_leased = capsules[0].export(Account(3), constraints=RESOURCE)
    closed_ref = capsules[0].export(Account(4))

    binder.bind(passive_expired)
    domain.passivation.passivate(capsules[0],
                                 passive_expired.interface_id)
    domain.passivation.passivate(capsules[0],
                                 passive_leased.interface_id)
    capsules[0].close(closed_ref.interface_id)
    world.clock.advance(20_000.0)  # expire the first lease
    leased_proxy = binder.bind(passive_leased)  # fresh lease now
    report = domain.collector.sweep()

    cases = [
        ("active, no leases", active_ref.interface_id,
         active_ref.interface_id not in report.collected),
        ("passive, leases expired", passive_expired.interface_id,
         passive_expired.interface_id in report.collected),
        ("passive, live lease", passive_leased.interface_id,
         passive_leased.interface_id not in report.collected),
        ("explicitly closed", closed_ref.interface_id,
         closed_ref.interface_id in report.closed_reclaimed),
    ]
    for label, _, verdict in cases:
        rows.append(f"  {label:>26}: handled correctly = {verdict}")
        assert verdict
    # The leased passive object is still usable after the sweep.
    assert leased_proxy.balance_of() == 3

    rows.append("-- reclamation over idle sweeps --")
    world, domain, passive = _population(40, passive_fraction=1.0,
                                         leased=True)
    domain.collector.start_sweeping(interval_ms=5_000.0)
    remaining = []
    for _ in range(5):
        world.scheduler.run_until(world.now + 5_000.0)
        live = sum(1 for capsule in domain.nuclei["node-0"].capsules.values()
                   for _ in capsule.interfaces)
        live += sum(1 for capsule in domain.nuclei["node-1"].capsules.values()
                    for _ in capsule.interfaces)
        remaining.append(live)
    domain.collector.stop_sweeping()
    rows.append(f"  passive objects remaining per sweep epoch: "
                f"{remaining}")
    assert remaining[-1] == 0  # everything reclaimed once leases lapsed
    write_report("C11", "distributed GC: safety, precision, idle-time "
                        "reclamation (section 7.3)", rows)
