"""C19 — Self-healing supervision: unavailability and MTTR.

Claim (section 5): failure transparency is an *engineering* problem —
masking a fault is not enough, the platform must also repair the
redundancy the fault consumed, or the next fault finds none left.
The ``repro.heal`` supervisor closes that loop from observed behaviour
alone: phi-accrual detection over real heartbeats, replica replacement
via placement, revive-with-state-transfer, and checkpointed singleton
recovery.

Method: one seeded scenario, run twice.  Four server nodes host a
3-replica KvStore group (s1-s3, quorum 2, s4 spare) and a checkpointed
singleton counter on s2.  A scripted :class:`FaultSchedule` then kills
one node at a time — s2 at 300ms, s3 at 1500ms, s1 at 2700ms, each for
600ms — so redundancy is consumed *sequentially*.  A client probes the
group and the counter every 25ms of virtual time and records which
probes fail:

  * baseline   — no supervisor.  Clients still mask what they can
                 (sequencer failover), but nobody repairs: after the
                 second crash the group is below quorum forever, after
                 the third it is fully unavailable, and the counter
                 dies with s2.
  * supervised — the domain supervisor detects each silent node from
                 heartbeats, replaces s2's replica on the spare s4,
                 revives voted-out members as their nodes return, and
                 re-instates the counter from its checkpoint.

Series produced, per mode and per service: failed probes, downtime
(failed probes x probe period) and mean time to repair (mean length of
a failed-probe episode; an unhealed episode counts until the horizon).
Expected shape: supervised downtime and MTTR are strictly lower for
both services, and the supervised group ends the run at full
replication factor.
"""

import pytest

from repro import ReplicationSpec, World
from repro.comp.constraints import EnvironmentConstraints, FailureSpec
from repro.comp.invocation import QoS
from repro.errors import OdpError
from repro.net.fault import CrashWindow, FaultSchedule

from benchmarks.workloads import Counter, KvStore, as_report, write_report

PROBE_MS = 25.0
PROBES = 160                 # 4000ms of virtual time
CRASHES = ((("s2"), 300.0, 900.0),
           (("s3"), 1500.0, 2100.0),
           (("s1"), 2700.0, 3300.0))


def _episodes(failures):
    """Consecutive failed-probe runs -> episode lengths in ms."""
    episodes, run = [], 0
    for failed in failures:
        if failed:
            run += 1
        elif run:
            episodes.append(run * PROBE_MS)
            run = 0
    if run:
        episodes.append(run * PROBE_MS)  # unhealed at the horizon
    return episodes


def _run(supervised):
    world = World(seed=19)
    for name in ("cli", "s1", "s2", "s3", "s4"):
        world.node("org", name)
    domain = world.domain("org")
    servers = {n: world.capsule(n, "srv")
               for n in ("s1", "s2", "s3", "s4")}
    clients = world.capsule("cli", "clients")
    binder = world.binder_for(clients)

    group, gref = domain.groups.create(
        KvStore, [servers[n] for n in ("s1", "s2", "s3")],
        ReplicationSpec(replicas=3, policy="active", reply_quorum=2),
        group_id="c19.kv")
    kv = binder.bind(gref, qos=QoS(deadline_ms=120.0, retries=2))
    counter_ref = servers["s2"].export(
        Counter(),
        constraints=EnvironmentConstraints(
            failure=FailureSpec(checkpoint_every=1)),
        interface_id="c19.ctr")
    counter = binder.bind(counter_ref,
                          qos=QoS(deadline_ms=120.0, retries=2))
    counter.increment()  # seed a checkpoint before any chaos

    world.apply_chaos(FaultSchedule(
        *[CrashWindow(node, start, end)
          for node, start, end in CRASHES]))
    supervisor = None
    if supervised:
        supervisor = domain.supervisor
        supervisor.start()

    kv_failed, ctr_failed = [], []
    for tick in range(PROBES):
        world.scheduler.run_until(world.now + PROBE_MS)
        world.faults.pump()
        try:
            kv.put("probe", str(tick))
            kv_failed.append(False)
        except OdpError:
            kv_failed.append(True)
        try:
            counter.increment()
            ctr_failed.append(False)
        except OdpError:
            ctr_failed.append(True)

    heal = supervisor.report() if supervised else None
    if supervised:
        supervisor.stop()
    kv_eps, ctr_eps = _episodes(kv_failed), _episodes(ctr_failed)
    return {
        "kv_failed": sum(kv_failed),
        "kv_downtime_ms": sum(kv_failed) * PROBE_MS,
        "kv_mttr_ms": sum(kv_eps) / len(kv_eps) if kv_eps else 0.0,
        "ctr_failed": sum(ctr_failed),
        "ctr_downtime_ms": sum(ctr_failed) * PROBE_MS,
        "ctr_mttr_ms": sum(ctr_eps) / len(ctr_eps) if ctr_eps else 0.0,
        "final_live": len(group.view.live_members()),
        "heal": heal,
    }


@pytest.mark.parametrize("supervised", [False, True],
                         ids=["baseline", "supervised"])
def test_c19_outage_workload(benchmark, supervised):
    benchmark.group = "C19 sequential node crashes"
    benchmark(lambda: _run(supervised))


def test_c19_report(benchmark):
    as_report(benchmark, _report)


def _report():
    baseline = _run(supervised=False)
    supervised = _run(supervised=True)
    rows = [f"workload: {PROBES} probes every {PROBE_MS:.0f}ms against a "
            f"3-replica group + checkpointed singleton (seed 19)",
            "crashes: " + "; ".join(
                f"{n} {int(s)}-{int(e)}ms" for n, s, e in CRASHES),
            f"{'mode':>11} {'service':>8} {'failed':>7} "
            f"{'downtime ms':>12} {'mttr ms':>8}"]
    for name, row in (("baseline", baseline),
                      ("supervised", supervised)):
        for service, prefix in (("group", "kv"), ("counter", "ctr")):
            rows.append(
                f"{name:>11} {service:>8} {row[prefix + '_failed']:>7} "
                f"{row[prefix + '_downtime_ms']:>12.0f} "
                f"{row[prefix + '_mttr_ms']:>8.1f}")

    # The supervisor must strictly beat doing nothing, on both axes,
    # for both services.
    assert supervised["kv_downtime_ms"] < baseline["kv_downtime_ms"]
    assert supervised["kv_mttr_ms"] < baseline["kv_mttr_ms"]
    assert supervised["ctr_downtime_ms"] < baseline["ctr_downtime_ms"]
    assert supervised["ctr_mttr_ms"] < baseline["ctr_mttr_ms"]
    # And it must leave the group at full factor — repaired, not just
    # masked — having actually replaced, revived and recovered.
    assert supervised["final_live"] == 3
    heal = supervised["heal"]
    assert heal["replacements"] >= 1
    assert heal["revivals"] >= 1
    assert heal["singleton_recoveries"] >= 1
    assert heal["detector"]["heartbeats_observed"] > 0

    rows.append("")
    rows.append(
        f"supervised repairs: {heal['replacements']} replacement(s), "
        f"{heal['revivals']} revival(s), "
        f"{heal['singleton_recoveries']} singleton recover(ies); "
        f"group downtime {baseline['kv_downtime_ms']:.0f} -> "
        f"{supervised['kv_downtime_ms']:.0f}ms, counter "
        f"{baseline['ctr_downtime_ms']:.0f} -> "
        f"{supervised['ctr_downtime_ms']:.0f}ms")
    write_report("C19", "self-healing supervision: unavailability and "
                        "MTTR with and without the repro.heal "
                        "supervisor (section 5)", rows)
