"""C17 — Causal tracing: overhead budget and per-layer attribution.

Claim (sections 4.6, 5): a platform that hides distribution must still
let engineers *see* it — "management of the system as a whole" needs
per-invocation visibility into what each transparency mechanism costs.
The ``repro.trace`` subsystem provides that: every invocation carries a
trace context through marshalling, the network, dispatch, interception
and nested calls, and each instrumented layer contributes timed spans.

Observability is only honest if it does not distort what it observes.
This bench pins the overhead story on two ledgers:

* **virtual time** — the platform's own deterministic cost ledger, the
  one every other bench asserts its claims in.  Tracing never advances
  the virtual clock (spans only *read* it); its sole charge is envelope
  growth — the ~30-byte wire context — billed by the bandwidth latency
  model like any other payload byte.  Asserted here: sampling=0 adds
  exactly nothing, and full sampling stays within the 5% budget (it
  lands near 0.01%); under a size-blind fixed-latency model the traced
  and untraced timelines are byte-identical.
* **wall clock** — what the CPython span machinery costs the *simulator
  host* per call.  Reported transparently (interleaved min-of-N), not
  tightly asserted: on a ~0.1 ms/call simulated invocation the span
  objects, ring append and wire carry measure in the tens of percent,
  and the number is dominated by allocator/GC behaviour of the host —
  a property of running the platform *as a simulation*, not a cost the
  modelled platform charges.  A loose tripwire bound guards against
  regressions that would make full sampling pathological.

Also asserted: the per-layer breakdown attributes >= 95% of the
client-perceived end-to-end virtual latency (the span forest has no
gaps — it attributes 100%), and two same-seed runs produce
byte-identical span forests (trace ids, timestamps, tags and all).

Series produced: virtual + wall overhead at sampling 0 and 1, and
per-layer latency tables for a C1-style remote workload and a C3-style
full transparency stack (location + security + concurrency + failure).
"""

import time

import pytest

from repro import EnvironmentConstraints, FailureSpec, SecuritySpec
from repro.net.latency import FixedLatency
from repro.security.policy import SecurityPolicy

from benchmarks.workloads import (
    Account,
    Counter,
    as_report,
    two_node_world,
    write_report,
)

INVOCATIONS = 200
SEED = 17
VIRTUAL_BUDGET_PCT = 5.0   # the C17 acceptance budget, virtual ledger
WALL_TRIPWIRE_PCT = 75.0   # loose host-cost tripwire, see module doc
ATTRIBUTION_FLOOR = 95.0   # % of end-to-end latency spans must cover


def _full_stack_constraints() -> EnvironmentConstraints:
    """C3's deepest stack: every transparency selected (federation off)."""
    return EnvironmentConstraints(
        location=True,
        concurrency=True,
        security=SecuritySpec(policy="bench"),
        failure=FailureSpec(checkpoint_every=10),
        federation=False)


def _remote_world(sampling, seed=SEED, constraints=None, **kwargs):
    """C1-style two-node world with one exported object bound remotely."""
    world, servers, clients = two_node_world(seed=seed, **kwargs)
    tracer = world.domain("org").tracer
    tracer.sampling = sampling
    if constraints is None:
        ref = servers.export(Counter())
    else:
        domain = world.domain("org")
        domain.policies.register(SecurityPolicy("bench", default_allow=True))
        domain.authority.enrol("bench-user")
        ref = servers.export(Account(10 ** 9), constraints=constraints)
    proxy = world.binder_for(clients).bind(ref, principal="bench-user")
    return world, proxy, tracer


def _drive(proxy, ops=INVOCATIONS, op="increment"):
    method = getattr(proxy, op)
    if op == "deposit":
        for _ in range(ops):
            method(1)
    else:
        for _ in range(ops):
            method()


def _virtual_elapsed(sampling, **kwargs):
    world, proxy, _ = _remote_world(sampling, **kwargs)
    start = world.now
    _drive(proxy)
    return world.now - start


def _wall_us_per_call(sampling, rounds=5):
    """Best-of-N wall cost per invocation at the given sampling rate."""
    world, proxy, tracer = _remote_world(sampling)
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        _drive(proxy)
        best = min(best, time.perf_counter() - start)
        tracer.clear()
        _ = tracer.metrics  # drain deferred aggregation between rounds
    return best / INVOCATIONS * 1e6


def _layer_table(tracer, title):
    totals = tracer.layer_breakdown()
    grand = sum(entry["self_ms"] for entry in totals.values()) or 1.0
    lines = [f"  {title}",
             f"    {'layer':<12}{'spans':>7}{'self_ms':>12}{'share':>9}"]
    ordered = sorted(totals.items(),
                     key=lambda item: -item[1]["self_ms"])
    for layer, entry in ordered:
        lines.append(
            f"    {layer:<12}{entry['spans']:>7}"
            f"{entry['self_ms']:>12.3f}"
            f"{100.0 * entry['self_ms'] / grand:>8.1f}%")
    return lines


def _report():
    lines = []

    # -- virtual-time overhead (the asserted budget) ----------------------
    v_off = _virtual_elapsed(0.0)
    v_on = _virtual_elapsed(1.0)
    v_pct = (v_on - v_off) / v_off * 100.0
    assert v_pct <= VIRTUAL_BUDGET_PCT, (
        f"full-sampling virtual overhead {v_pct:.3f}% over budget")
    assert _virtual_elapsed(0.0) == v_off  # sampling=0 is deterministic

    f_off = _virtual_elapsed(0.0, latency=FixedLatency(1.0))
    f_on = _virtual_elapsed(1.0, latency=FixedLatency(1.0))
    assert f_on == f_off, "size-blind latency model must see no tracing"

    lines += [
        "virtual-time overhead (the platform's own cost ledger)",
        f"  bandwidth model, {INVOCATIONS} remote increments, seed {SEED}:",
        f"    sampling=0.0 : {v_off:10.3f} virtual ms",
        f"    sampling=1.0 : {v_on:10.3f} virtual ms"
        f"   (+{v_pct:.3f}%, budget {VIRTUAL_BUDGET_PCT:.0f}%)",
        f"    fixed-latency model: traced == untraced"
        f" ({f_on:.3f} ms both) -> 0.000%",
        "  spans read the virtual clock, never advance it; the only",
        "  platform charge is the ~30-byte wire context.",
        "",
    ]

    # -- wall-clock overhead (reported, loosely bounded) ------------------
    wall = {}
    for _ in range(3):  # interleave configs so drift hits both equally
        for rate in (0.0, 1.0):
            sample = _wall_us_per_call(rate)
            wall[rate] = min(wall.get(rate, float("inf")), sample)
    w_pct = (wall[1.0] - wall[0.0]) / wall[0.0] * 100.0
    assert w_pct <= WALL_TRIPWIRE_PCT, (
        f"full-sampling wall overhead {w_pct:.1f}% tripped the"
        f" {WALL_TRIPWIRE_PCT:.0f}% pathological-regression bound")
    lines += [
        "wall-clock overhead (simulator-host cost, informational)",
        f"    sampling=0.0 : {wall[0.0]:8.1f} us/call",
        f"    sampling=1.0 : {wall[1.0]:8.1f} us/call   (+{w_pct:.1f}%)",
        "  CPython span machinery on a ~0.1 ms simulated call; noisy,",
        f"  GC-dominated, tripwire-bounded at {WALL_TRIPWIRE_PCT:.0f}%.",
        "",
    ]

    # -- per-layer breakdown tables ---------------------------------------
    world, proxy, tracer = _remote_world(1.0)
    _drive(proxy)
    lines += ["per-layer virtual latency attribution"]
    lines += _layer_table(
        tracer, f"C1-style remote workload ({INVOCATIONS} increments)")

    trace_id = tracer.trace_ids()[-1]
    root = tracer.tree(trace_id)
    covered = sum(tracer.breakdown(trace_id).values())
    coverage = 100.0 * covered / root.span.duration_ms
    assert coverage >= ATTRIBUTION_FLOOR, (
        f"spans attribute only {coverage:.1f}% of end-to-end latency")
    lines += [
        "",
        f"  attribution: spans cover {coverage:.1f}% of the"
        f" client-perceived latency (floor {ATTRIBUTION_FLOOR:.0f}%)",
        "",
    ]

    _, proxy3, tracer3 = _remote_world(
        1.0, constraints=_full_stack_constraints())
    _drive(proxy3, op="deposit")
    lines += _layer_table(
        tracer3,
        f"C3-style full transparency stack ({INVOCATIONS} deposits)")
    lines.append("")

    # -- determinism -------------------------------------------------------
    def forest_text():
        _, proxy_n, tracer_n = _remote_world(1.0)
        _drive(proxy_n, ops=20)
        return "\n".join(tracer_n.render(tid) for tid in tracer_n.trace_ids())

    first, second = forest_text(), forest_text()
    assert first == second, "same-seed runs must yield identical forests"
    lines += [
        "determinism: two seed-17 runs produce byte-identical span",
        "forests (trace ids, timestamps, statuses, tags).",
        "",
        "sample trace (last of the C1 run):",
    ]
    lines += ["  " + line for line in
              tracer.render(trace_id).splitlines()]

    write_report(
        "C17",
        "causal tracing: overhead budget & per-layer attribution", lines)


@pytest.mark.parametrize("rate", [0.0, 1.0])
def test_c17_sampling_cost(benchmark, rate):
    benchmark.group = "C17 tracing"
    benchmark.name = f"sampling-{rate:.1f}"
    world, proxy, tracer = _remote_world(rate)
    benchmark(lambda: _drive(proxy))


def test_c17_report(benchmark):
    as_report(benchmark, _report)
