"""C5 — Concurrency transparency: ACID under contention (section 5.2).

Claims: transactions mask overlapped execution (serializable outcomes);
the deadlock detector ensures "applications do not hang indefinitely if
transactions suffer locking conflicts".

Series produced:
  * throughput and abort/retry counts as the conflict rate rises
    (transfers concentrated on fewer and fewer accounts),
  * a deadlock-storm workload (every pair locks in opposite order):
    all transactions still complete, with deadlock counts reported,
  * the cost of transactional vs plain invocations (the price of the
    ACID machinery).
Expected shape: retries and deadlocks rise with contention but money is
conserved and every workload terminates.
"""

import pytest

from repro import EnvironmentConstraints, Signal
from repro.sim.rand import DeterministicRandom
from repro.tx.runner import TxRunner

from benchmarks.workloads import (
    Account,
    as_report,
    n_node_world,
    write_report,
)

TX = EnvironmentConstraints(concurrency=True)
SCRIPTS = 12


def _build(accounts, seed=3):
    world, capsules, clients = n_node_world(2, seed=seed)
    domain = world.domain("org")
    binder = world.binder_for(clients)
    proxies = []
    for i in range(accounts):
        ref = capsules[i % 2].export(Account(1000), constraints=TX)
        proxies.append(binder.bind(ref))
    return world, domain, proxies


def _transfer(source, target, amount):
    def script(tx):
        state = {}

        def withdraw():
            try:
                source.withdraw(amount)
                state["ok"] = True
            except Signal:
                state["ok"] = False

        yield withdraw
        yield lambda: target.deposit(amount) if state["ok"] else None
    return script


def _workload(accounts, seed=3):
    world, domain, proxies = _build(accounts, seed)
    rng = DeterministicRandom(seed)
    scripts = []
    for _ in range(SCRIPTS):
        i, j = rng.sample(range(accounts), 2)
        scripts.append(_transfer(proxies[i], proxies[j],
                                 rng.randint(1, 50)))
    runner = TxRunner(domain.tx_manager, world.scheduler, rng=rng)
    return world, domain, proxies, runner, scripts


@pytest.mark.parametrize("accounts", [12, 4, 2])
def test_c5_contention(benchmark, accounts):
    benchmark.group = "C5 transactions vs contention"
    benchmark(lambda: _workload(accounts)[3].run(
        _workload(accounts)[4]))


def test_c5_report(benchmark):
    as_report(benchmark, _report)


def _report():
    rows = ["-- contention sweep (12 concurrent transfers) --"]
    for accounts in (12, 6, 3, 2):
        world, domain, proxies, runner, scripts = _workload(accounts)
        start = world.now
        records = runner.run(scripts)
        elapsed = world.now - start
        committed = sum(1 for r in records if r.committed)
        busy = sum(r.busy_waits for r in records)
        deadlocks = sum(r.deadlocks for r in records)
        total = sum(p.balance_of() for p in proxies)
        rows.append(
            f"  accounts={accounts:>2}: committed {committed}/{SCRIPTS}, "
            f"busy-waits {busy:>3}, deadlocks {deadlocks}, "
            f"{elapsed:8.2f} virtual ms, money conserved: "
            f"{total == 1000 * accounts}")
        assert committed == SCRIPTS
        assert total == 1000 * accounts

    rows.append("-- deadlock storm (opposite lock orders) --")
    world, domain, proxies = _build(2, seed=11)
    a, b = proxies
    storm = []
    for i in range(6):
        if i % 2 == 0:
            storm.append(_transfer(a, b, 1))
        else:
            storm.append(_transfer(b, a, 1))
    runner = TxRunner(domain.tx_manager, world.scheduler,
                      rng=DeterministicRandom(5))
    records = runner.run(storm)
    deadlocks = sum(r.deadlocks for r in records)
    rows.append(f"  all committed: {all(r.committed for r in records)}, "
                f"deadlocks detected+resolved: {deadlocks}, "
                f"restarts: {runner.restarts}")
    assert all(r.committed for r in records)

    rows.append("-- price of the ACID machinery --")
    for label, constraints in (("plain", EnvironmentConstraints()),
                               ("transactional", TX)):
        world, capsules, clients = n_node_world(2)
        ref = capsules[0].export(Account(10 ** 6),
                                 constraints=constraints)
        proxy = world.binder_for(clients).bind(ref)
        domain = world.domain("org")
        start = world.now
        if label == "plain":
            for _ in range(40):
                proxy.deposit(1)
        else:
            for _ in range(40):
                with domain.tx_manager.begin():
                    proxy.deposit(1)
        rows.append(f"  {label:>13}: "
                    f"{(world.now - start) / 40:8.4f} virtual ms/op")
    write_report("C5", "transactions: serialisable, deadlock-free "
                       "progress under contention (section 5.2)", rows)
