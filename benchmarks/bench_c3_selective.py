"""C3 — Selective transparency: you pay only for what you select.

Claim (sections 3, 4.5): transparency must be "declarative, selective and
modular"; an unselected transparency contributes no mechanism to the
access path.

Series produced: per-invocation virtual cost and server-stack depth for
stacks of increasing selection:
  0: access only (type-check) — the floor,
  1: + location,
  2: + security (guard + MAC verification),
  3: + concurrency (locks + versions),
  4: + failure (write-ahead log + checkpoints).
Expected shape: cost grows monotonically with each selected transparency;
the unselected configuration is not billed for the others.
"""

import pytest

from repro import EnvironmentConstraints, FailureSpec, SecuritySpec
from repro.security.policy import SecurityPolicy
from repro.transparency.access import describe_server_stack

from benchmarks.workloads import as_report, Account, two_node_world, write_report

INVOCATIONS = 100


def _constraints(level: int) -> EnvironmentConstraints:
    selections = {}
    if level >= 1:
        selections["location"] = True
    if level >= 2:
        selections["security"] = SecuritySpec(policy="bench")
    if level >= 3:
        selections["concurrency"] = True
    if level >= 4:
        selections["failure"] = FailureSpec(checkpoint_every=10)
    return EnvironmentConstraints(
        location=selections.get("location", False),
        concurrency=selections.get("concurrency", False),
        security=selections.get("security"),
        failure=selections.get("failure"),
        federation=False)


def _build(level: int):
    world, servers, clients = two_node_world()
    domain = world.domain("org")
    domain.policies.register(SecurityPolicy("bench", default_allow=True))
    domain.authority.enrol("bench-user")
    ref = servers.export(Account(10 ** 9), constraints=_constraints(level))
    proxy = world.binder_for(clients).bind(ref, principal="bench-user")
    interface = servers.interfaces[ref.interface_id]
    return world, proxy, interface


def _drive(world, proxy):
    for _ in range(INVOCATIONS):
        proxy.deposit(1)


@pytest.mark.parametrize("level", [0, 1, 2, 3, 4])
def test_c3_stack_depth(benchmark, level):
    benchmark.group = "C3 selective transparency"
    benchmark.name = f"level-{level}"
    world, proxy, interface = _build(level)
    benchmark(lambda: _drive(world, proxy))


def test_c3_report(benchmark):
    as_report(benchmark, lambda: _report())


def _report():
    rows = []
    costs = []
    for level in range(5):
        world, proxy, interface = _build(level)
        start = world.now
        _drive(world, proxy)
        per_call = (world.now - start) / INVOCATIONS
        costs.append(per_call)
        stack = describe_server_stack(interface)
        rows.append(f"level {level}: {per_call:8.4f} virtual ms/call, "
                    f"server stack = {stack}")
    write_report("C3", "selective transparency: cost grows only with "
                       "selection (sections 3, 4.5)", rows)
    # Monotone shape: each selected transparency adds cost; the floor
    # configuration pays for none of them.
    for lower, higher in zip(costs, costs[1:]):
        assert higher >= lower * 0.999
    assert costs[4] > costs[0]
