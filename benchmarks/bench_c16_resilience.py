"""C16 — Invocation resilience: exactly-once retries under chaos.

Claim (section 4.1): transparency mechanisms "cannot guarantee that
things will always work perfectly" — the engineering question is what
the platform guarantees when the network misbehaves.  The resilience
layer answers: retransmissions with exponential backoff are answered
from a server-side reply cache, so a non-idempotent operation executes
exactly once no matter how many reply legs a chaos schedule eats.

Method: a 10%-drop flaky window covers the whole run (scripted as a
FaultSchedule, not an imperative toggle).  The same seeded workload of
non-idempotent increments runs twice:

  * legacy    — resilience layer off: fixed retry delay, at-least-once
                (a lost reply leg re-executes the increment).  Because
                every blind retry risks a duplicate, the retry budget
                is kept low (retries=1) — the realistic configuration
                for non-idempotent ops on such a transport — so losses
                regularly exhaust it and the client resubmits after a
                think-time penalty;
  * resilient — exactly-once retries + jittered backoff + reply cache.
                The cache makes retries safe, so the budget can be
                deep (retries=5) and ops essentially never fail.

Series produced, per mode: duplicate executions (server-side count
minus client-acked ops), goodput (acked ops per virtual second), and
suppressed-duplicate / retry counters from the transparency monitor.
Expected shape: resilient duplicates == 0 while legacy duplicates > 0,
and resilient goodput is higher because backoff+cache recover faster
than resubmit-after-penalty.
"""

import pytest

from repro import FaultSchedule, FlakyWindow, QoS
from repro.errors import CommunicationError
from repro.mgmt.monitor import TransparencyMonitor

from benchmarks.workloads import (
    Counter,
    as_report,
    two_node_world,
    write_report,
)

OPS = 200
DROP = 0.10
PENALTY_MS = 20.0  # client think time before resubmitting a failed op


def _run(resilient):
    world, servers, clients = two_node_world(seed=16)
    world.apply_chaos(FaultSchedule(
        FlakyWindow(start_ms=0.0, end_ms=1e9, drop=DROP)))
    counter = Counter()
    retries = 5 if resilient else 1  # blind retries duplicate: keep low
    proxy = world.binder_for(clients).bind(
        servers.export(counter),
        qos=QoS(retries=retries, retry_delay_ms=1.0))
    if not resilient:
        proxy._channel.transport.resilience_enabled = False
    start = world.now
    acked = 0
    for _ in range(OPS):
        while True:
            try:
                proxy.increment()
            except CommunicationError:
                world.clock.advance(PENALTY_MS)  # resubmit after penalty
            else:
                acked += 1
                break
    elapsed_s = (world.now - start) / 1000.0
    report = TransparencyMonitor(
        world.domain("org")).domain_report()["resilience"]
    return {
        "executed": counter.value,
        "acked": acked,
        "duplicates": counter.value - acked,
        "goodput": acked / elapsed_s,
        "retries": report["retries"],
        "suppressed": report["duplicates_suppressed"],
        "drops": world.faults.drops,
    }


@pytest.mark.parametrize("resilient", [False, True],
                         ids=["legacy", "resilient"])
def test_c16_chaos_workload(benchmark, resilient):
    benchmark.group = "C16 resilience under 10% drop"
    benchmark(lambda: _run(resilient))


def test_c16_report(benchmark):
    as_report(benchmark, _report)


def _report():
    legacy = _run(resilient=False)
    resilient = _run(resilient=True)
    rows = [f"workload: {OPS} non-idempotent increments under a "
            f"{DROP:.0%}-drop flaky window (seed 16)",
            f"{'mode':>10} {'executed':>9} {'acked':>6} {'dupes':>6} "
            f"{'goodput op/s':>13} {'retries':>8} {'suppressed':>11}"]
    for name, row in (("legacy", legacy), ("resilient", resilient)):
        rows.append(f"{name:>10} {row['executed']:>9} {row['acked']:>6} "
                    f"{row['duplicates']:>6} {row['goodput']:>13.1f} "
                    f"{row['retries']:>8} {row['suppressed']:>11}")
    # Exactly-once: the reply cache absorbs every retransmission.
    assert resilient["duplicates"] == 0
    assert resilient["suppressed"] > 0
    # Legacy at-least-once really does re-execute on reply-leg loss.
    assert legacy["duplicates"] > 0
    # And recovering via backoff+cache beats resubmit-after-penalty.
    assert resilient["goodput"] > legacy["goodput"]
    rows.append("")
    rows.append(f"goodput gain: "
                f"{resilient['goodput'] / legacy['goodput']:.2f}x; "
                f"legacy duplicated {legacy['duplicates']} executions, "
                f"resilient suppressed {resilient['suppressed']} "
                f"retransmissions server-side")
    write_report("C16", "invocation resilience: exactly-once retries "
                        "under a scripted 10%-drop chaos window "
                        "(section 4.1)", rows)
