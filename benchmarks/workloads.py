"""Shared workload definitions and report plumbing for the benchmarks.

The paper ("The Challenge of ODP", 1991) is a position paper with no
tables or figures; every benchmark here regenerates one of its *prose*
engineering claims as a measured series (see DESIGN.md's experiment
index and EXPERIMENTS.md).  Each bench both:

* exercises the claim under pytest-benchmark (wall-clock cost of the
  simulated mechanism), and
* computes the claim's series in *virtual* time / message counts and
  appends it to ``benchmarks/out/<id>.txt`` so the run leaves a
  human-readable artefact.
"""

from __future__ import annotations

import os
from typing import List

from repro import OdpObject, Signal, World, operation

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def as_report(benchmark, fn) -> None:
    """Run a claim-report builder exactly once under pytest-benchmark.

    Report tests validate the claim's *shape* in virtual time and write
    the series artefact; registering them as single-round benchmarks
    keeps them alive under ``--benchmark-only``.
    """
    benchmark.group = "claim reports"
    benchmark.pedantic(fn, rounds=1, iterations=1)


def write_report(experiment_id: str, title: str, lines: List[str]) -> str:
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, f"{experiment_id}.txt")
    with open(path, "w") as handle:
        handle.write(f"{experiment_id}: {title}\n")
        handle.write("=" * 72 + "\n")
        for line in lines:
            handle.write(line + "\n")
    return path


class Counter(OdpObject):
    def __init__(self, start: int = 0) -> None:
        self.value = start

    @operation(returns=[int])
    def increment(self):
        self.value += 1
        return self.value

    @operation(returns=[int], readonly=True)
    def read(self):
        return self.value


class Account(OdpObject):
    def __init__(self, balance: int = 0) -> None:
        self.balance = balance

    @operation(params=[int], returns=[int])
    def deposit(self, amount):
        self.balance += amount
        return self.balance

    @operation(params=[int], returns=[int], errors={"overdrawn": [int]})
    def withdraw(self, amount):
        if amount > self.balance:
            raise Signal("overdrawn", self.balance)
        self.balance -= amount
        return self.balance

    @operation(returns=[int], readonly=True)
    def balance_of(self):
        return self.balance


class KvStore(OdpObject):
    def __init__(self) -> None:
        self.data = {}

    @operation(params=[str, str])
    def put(self, key, value):
        self.data[key] = value

    @operation(params=[str], returns=[str], readonly=True)
    def get(self, key):
        return self.data.get(key, "")


class Echo(OdpObject):
    @operation(params=["any"], returns=["any"])
    def echo(self, value):
        return value


def two_node_world(seed: int = 1, **kwargs) -> tuple:
    """(world, server_capsule, client_capsule) on separate nodes."""
    world = World(seed=seed, **kwargs)
    world.node("org", "server-node")
    world.node("org", "client-node")
    return (world,
            world.capsule("server-node", "servers"),
            world.capsule("client-node", "clients"))


def n_node_world(n: int, seed: int = 1, **kwargs) -> tuple:
    """(world, [server capsules], client_capsule)."""
    world = World(seed=seed, **kwargs)
    capsules = []
    for i in range(n):
        world.node("org", f"node-{i}")
        capsules.append(world.capsule(f"node-{i}", "servers"))
    world.node("org", "client-node")
    clients = world.capsule("client-node", "clients")
    return world, capsules, clients
