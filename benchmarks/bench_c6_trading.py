"""C6 — Trading: scale, type-safe matching, federation (section 6).

Claims: "self-describing systems are more open-ended and scale better
than those which have a fixed external description"; clients are "only
told of service offers which provide at least the operations [they]
require"; federated traders cross-link into an arbitrary graph.

Series produced:
  * import latency vs offer-database size (10^1 .. 10^3 offers),
  * selectivity: matched offers under increasingly specific property
    constraints,
  * federated lookup cost vs trader-chain length 1..6.
Expected shape: lookup grows roughly linearly with database size and
chain length; type checking never returns a false match.
"""

import pytest

from repro import signature_of

from benchmarks.workloads import (
    Account,
    Counter,
    as_report,
    two_node_world,
    write_report,
)
from repro.runtime import World


def _stocked_trader(offers):
    world, servers, clients = two_node_world()
    domain = world.domain("org")
    regions = ("eu", "us", "ap")
    for i in range(offers):
        ref = servers.export(Counter())
        domain.trader.export(
            ref.signature, ref,
            properties={"cost": i % 50, "region": regions[i % 3],
                        "index": i})
    # A decoy population with a different type.
    for i in range(offers // 10 + 1):
        ref = servers.export(Account(0))
        domain.trader.export(ref.signature, ref,
                             properties={"cost": i})
    return world, domain


def _chain(length):
    world = World(seed=2)
    traders = []
    for i in range(length):
        name = f"dom{i}"
        world.node(name, f"n{i}")
        servers = world.capsule(f"n{i}", "srv")
        domain = world.domain(name)
        ref = servers.export(Counter())
        domain.trader.export(ref.signature, ref,
                             properties={"home": name})
        traders.append(domain.trader)
    for i in range(length - 1):
        traders[i].link(f"next", traders[i + 1])
    return traders


@pytest.mark.parametrize("offers", [10, 100, 1000])
def test_c6_import_vs_database_size(benchmark, offers):
    benchmark.group = "C6 trading scale"
    world, domain = _stocked_trader(offers)
    requirement = signature_of(Counter)
    benchmark(lambda: domain.trader.import_service(
        requirement, query="cost < 10 and region == 'eu'"))


@pytest.mark.parametrize("length", [2, 4, 6])
def test_c6_federated_chain(benchmark, length):
    benchmark.group = "C6 federated lookup"
    traders = _chain(length)
    requirement = signature_of(Counter)
    target = f"home == 'dom{length - 1}'"
    benchmark(lambda: traders[0].import_service(
        requirement, query=target, max_hops=length))


def test_c6_report(benchmark):
    as_report(benchmark, _report)


def _report():
    import time

    rows = ["-- import wall time vs offer-database size --"]
    requirement = signature_of(Counter)
    for offers in (10, 100, 1000):
        world, domain = _stocked_trader(offers)
        begin = time.perf_counter()
        replies = domain.trader.import_service(
            requirement, query="cost < 10 and region == 'eu'")
        elapsed = (time.perf_counter() - begin) * 1000
        rows.append(f"  offers={offers:>5}: {elapsed:8.3f} wall ms, "
                    f"{len(replies)} matches")
        # Type safety: no Account offer ever leaks into Counter results.
        assert all("increment" in r.ref.signature.operations
                   for r in replies)

    rows.append("-- selectivity of property constraints --")
    world, domain = _stocked_trader(300)
    for query in ("", "region == 'eu'", "region == 'eu' and cost < 5",
                  "region == 'eu' and cost < 5 and index > 250"):
        matches = len(domain.trader.import_service(requirement,
                                                   query=query))
        rows.append(f"  {query!r:>45}: {matches} matches")

    rows.append("-- federated chain traversal --")
    for length in (1, 2, 4, 6):
        traders = _chain(length)
        replies = traders[0].import_service(
            requirement, query=f"home == 'dom{length - 1}'",
            max_hops=length)
        found = len(replies) == 1
        via = replies[0].via if replies else ()
        rows.append(f"  chain length {length}: found={found}, "
                    f"hops travelled={len(via)}")
        assert found
        assert len(via) == length - 1
    write_report("C6", "trading: scale, type-safety, federation "
                       "(section 6)", rows)
