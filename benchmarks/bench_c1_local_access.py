"""C1 — Direct local access vs. the full channel (paper section 4.5).

Claim: "a simplistic implementation of abstract data types would be very
inefficient, because of the amount of indirection implied ... direct
local access can be used for co-located data - trading off flexibility
and portability against performance."

Series produced: per-invocation cost (virtual ms and wall time) for
  * co-located with the direct-local-access optimisation,
  * co-located but forced through marshalling + loopback network,
  * genuinely remote.
Expected shape: local << forced-full-stack <= remote.
"""

from repro import EnvironmentConstraints

from benchmarks.workloads import as_report, Counter, two_node_world, write_report

INVOCATIONS = 200


def _co_located(allow_local):
    world, servers, clients = two_node_world()
    neighbours = world.capsule("server-node", "neighbours")
    ref = servers.export(Counter())
    proxy = world.binder_for(neighbours).bind(
        ref,
        constraints=EnvironmentConstraints(
            allow_local_shortcut=allow_local))
    return world, proxy


def _remote():
    world, servers, clients = two_node_world()
    ref = servers.export(Counter())
    proxy = world.binder_for(clients).bind(ref)
    return world, proxy


def _drive(world_proxy):
    world, proxy = world_proxy
    for _ in range(INVOCATIONS):
        proxy.increment()


def test_c1_local_shortcut(benchmark):
    benchmark.group = "C1 invocation path"
    benchmark(lambda: _drive(_co_located(allow_local=True)))


def test_c1_full_stack_loopback(benchmark):
    benchmark.group = "C1 invocation path"
    benchmark(lambda: _drive(_co_located(allow_local=False)))


def test_c1_remote(benchmark):
    benchmark.group = "C1 invocation path"
    benchmark(lambda: _drive(_remote()))


def test_c1_report(benchmark):
    as_report(benchmark, lambda: _report())


def _report():
    """Virtual-cost series + the claim's expected shape."""
    rows = []
    results = {}
    for label, build in (("local-shortcut",
                          lambda: _co_located(True)),
                         ("full-stack-loopback",
                          lambda: _co_located(False)),
                         ("remote", _remote)):
        world, proxy = build()
        start = world.now
        messages = world.network.total_messages
        _drive((world, proxy))
        virtual_ms = (world.now - start) / INVOCATIONS
        per_call_msgs = (world.network.total_messages
                         - messages) / INVOCATIONS
        results[label] = virtual_ms
        rows.append(f"{label:>22}: {virtual_ms:8.4f} virtual ms/call, "
                    f"{per_call_msgs:.1f} msgs/call")
    path = write_report(
        "C1", "direct local access vs full channel (section 4.5)", rows)

    # The claim's shape: indirection through the full stack costs real
    # time; the co-located optimisation removes essentially all of it.
    assert results["local-shortcut"] < 0.01
    assert results["full-stack-loopback"] > \
        results["local-shortcut"] * 10
    assert results["remote"] >= results["full-stack-loopback"]
