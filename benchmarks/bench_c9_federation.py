"""C9 — Federation interception is economical (sections 4.2, 5.6).

Claims: boundaries need gateways that "enforce the security and
accounting policies of each organization" and "translat[e] between
differences in protocol"; "for interception to be economical, there must
be a commonly accepted standard for interworking" — i.e. the cost of
crossing must be a bounded constant factor, not a cliff.

Series produced:
  * intra-domain vs cross-domain invocation cost (messages + virtual
    time), homogeneous and heterogeneous wire formats,
  * cost vs federation route length (1..4 domains traversed),
  * the administrative component: guarded + principal-mapped crossing
    vs unguarded crossing.
Expected shape: one boundary adds roughly one gateway hop (~1.5-2x);
each further domain adds another constant increment; format translation
is absorbed by the gateway (no client-visible failure).
"""

import pytest

from repro.runtime import World

from benchmarks.workloads import Counter, as_report, write_report

CALLS = 30


def _pair(formats=("packed", "packed")):
    world = World(seed=4)
    # The first node of A hosts its primary gateway; the server lives on
    # a different node so the boundary hop is visible in the counts.
    world.node("A", "a-gateway", formats[0])
    world.node("A", "a-server", formats[0])
    world.node("A", "a-client", formats[0])
    world.node("B", "b-client", formats[1])
    world.link_domains("A", "B")
    servers = world.capsule("a-server", "srv")
    ref = servers.export(Counter())
    local = world.binder_for(world.capsule("a-client", "cli")).bind(ref)
    foreign = world.binder_for(world.capsule("b-client", "cli")).bind(ref)
    return world, local, foreign


def _chain(length):
    world = World(seed=4)
    for i in range(length + 1):
        fmt = "packed" if i % 2 == 0 else "tagged"
        world.node(f"dom{i}", f"n{i}", fmt)
    for i in range(length):
        world.link_domains(f"dom{i}", f"dom{i + 1}")
    servers = world.capsule(f"n{length}", "srv")
    ref = servers.export(Counter())
    client = world.binder_for(world.capsule("n0", "cli")).bind(ref)
    return world, client


def _measure(world, proxy, calls=CALLS):
    start, msgs = world.now, world.network.total_messages
    for _ in range(calls):
        proxy.increment()
    return ((world.now - start) / calls,
            (world.network.total_messages - msgs) / calls)


def test_c9_intra_domain(benchmark):
    benchmark.group = "C9 boundary crossing"
    world, local, foreign = _pair()
    benchmark(lambda: _measure(world, local, 10))


def test_c9_cross_domain(benchmark):
    benchmark.group = "C9 boundary crossing"
    world, local, foreign = _pair()
    benchmark(lambda: _measure(world, foreign, 10))


@pytest.mark.parametrize("length", [1, 2, 4])
def test_c9_route_length(benchmark, length):
    benchmark.group = "C9 route length"
    world, client = _chain(length)
    benchmark(lambda: _measure(world, client, 10))


def test_c9_report(benchmark):
    as_report(benchmark, _report)


def _report():
    rows = ["-- one boundary, homogeneous vs heterogeneous formats --"]
    results = {}
    for label, formats in (("homogeneous", ("packed", "packed")),
                           ("heterogeneous", ("packed", "tagged"))):
        world, local, foreign = _pair(formats)
        local_ms, local_msgs = _measure(world, local)
        foreign_ms, foreign_msgs = _measure(world, foreign)
        results[label] = (local_ms, foreign_ms)
        rows.append(f"  {label:>14}: intra {local_ms:7.4f} ms "
                    f"({local_msgs:.0f} msgs) | cross "
                    f"{foreign_ms:7.4f} ms ({foreign_msgs:.0f} msgs) | "
                    f"factor {foreign_ms / local_ms:4.2f}x")
        # Economical: crossing costs a bounded constant factor.
        assert foreign_ms > local_ms
        assert foreign_ms < local_ms * 4
        assert foreign_msgs == local_msgs + 2  # exactly one gateway hop

    rows.append("-- cost vs federation route length --")
    costs = {}
    for length in (1, 2, 3, 4):
        world, client = _chain(length)
        ms, msgs = _measure(world, client)
        costs[length] = ms
        rows.append(f"  {length} boundar{'y' if length == 1 else 'ies'}: "
                    f"{ms:7.4f} ms, {msgs:.0f} msgs/call")
    increments = [costs[n + 1] - costs[n] for n in (1, 2, 3)]
    rows.append(f"  per-extra-domain increments: "
                f"{['%.4f' % i for i in increments]}")
    assert all(i > 0 for i in increments)
    # Roughly constant increment per domain (within 3x of each other).
    assert max(increments) < 3 * min(increments)
    write_report("C9", "federation interception cost (sections 4.2, "
                       "5.6)", rows)
