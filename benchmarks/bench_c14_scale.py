"""C14 — Scale and growth by interconnection (section 2).

Claims: ODP systems "scale to sizes larger than the telephone system";
"while initially ODP systems may be small, they will grow by
interconnection to other ODP systems"; development is "ad hoc: there
will not be a central design or management authority".

Obviously a laptop simulation cannot demonstrate telephone-system scale;
what it *can* measure is whether the architecture's per-element costs
stay flat as the deployment grows — the property that makes scaling by
interconnection plausible at all:

  * invocation cost vs node count (routing must not degrade),
  * export + bind cost vs population (registries must stay O(1) per
    entry),
  * growth by interconnection: domains federated into a ring one at a
    time, with cross-federation invocations working at every step and
    costing proportionally to route length only.
"""

import time

import pytest

from repro.runtime import World

from benchmarks.workloads import Counter, as_report, write_report


def _flat_world(nodes):
    world = World(seed=6)
    for i in range(nodes):
        world.node("org", f"n{i}")
    return world


@pytest.mark.parametrize("nodes", [4, 16, 64])
def test_c14_invocation_vs_node_count(benchmark, nodes):
    benchmark.group = "C14 invocation vs nodes"
    world = _flat_world(nodes)
    servers = world.capsule(f"n{nodes - 1}", "srv")
    clients = world.capsule("n0", "cli")
    proxy = world.binder_for(clients).bind(servers.export(Counter()))
    benchmark(proxy.increment)


def test_c14_report(benchmark):
    as_report(benchmark, _report)


def _report():
    rows = ["-- invocation cost vs deployment size --"]
    costs = {}
    for nodes in (4, 16, 64):
        world = _flat_world(nodes)
        servers = world.capsule(f"n{nodes - 1}", "srv")
        clients = world.capsule("n0", "cli")
        proxy = world.binder_for(clients).bind(servers.export(Counter()))
        start = world.now
        for _ in range(30):
            proxy.increment()
        costs[nodes] = (world.now - start) / 30
        rows.append(f"  {nodes:>3} nodes: {costs[nodes]:8.4f} virtual "
                    f"ms/call")
    # Flat: routing cost independent of population.
    assert abs(costs[64] - costs[4]) < 0.01

    rows.append("-- export+bind wall cost vs population --")
    for population in (50, 200, 800):
        world = _flat_world(4)
        servers = world.capsule("n0", "srv")
        clients = world.capsule("n1", "cli")
        binder = world.binder_for(clients)
        begin = time.perf_counter()
        refs = [servers.export(Counter()) for _ in range(population)]
        proxies = [binder.bind(ref) for ref in refs]
        elapsed = (time.perf_counter() - begin) * 1000
        rows.append(f"  population {population:>4}: "
                    f"{elapsed / population:7.4f} wall ms per "
                    f"export+bind")
        assert world.domain("org").relocator.known() == population

    rows.append("-- growth by interconnection (federated ring) --")
    world = World(seed=6)
    refs = {}
    for i in range(8):
        name = f"org{i}"
        world.node(name, f"g{i}")
        servers = world.capsule(f"g{i}", "srv")
        refs[name] = servers.export(Counter())
        if i > 0:
            world.link_domains(f"org{i - 1}", name)
        # At every growth step, the *newest* organisation can reach the
        # very first one across the whole chain.
        clients = world.capsule(f"g{i}", "apps")
        proxy = world.binder_for(clients).bind(refs["org0"])
        start = world.now
        value = proxy.increment()
        cost = world.now - start
        route = len(world.federation.route(name, "org0")) - 1
        rows.append(f"  +{name}: chain of {i + 1} domains, invocation "
                    f"crosses {route} boundaries in {cost:7.3f} ms "
                    f"-> counter={value}")
        assert value == i + 1
    write_report("C14", "scale: flat per-element costs, growth by "
                        "interconnection (section 2)", rows)
